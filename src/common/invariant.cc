#include "common/invariant.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace xvm {

namespace {

bool DefaultEnabled() {
  if (const char* env = std::getenv("XVM_CHECK_INVARIANTS")) {
    return env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  }
#ifdef XVM_CHECK_INVARIANTS
  return true;
#else
  return false;
#endif
}

// atomic: the audit gate is read on every maintenance statement — including
// from propagation workers — and flipped by tests via SetInvariantAuditing.
// It is a pure on/off switch with no data published alongside it, so relaxed
// loads/exchanges are sufficient: a thread observing a stale value merely
// runs (or skips) one more audit pass.
std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{DefaultEnabled()};
  return enabled;
}

}  // namespace

bool InvariantReport::Has(std::string_view invariant) const {
  for (const InvariantViolation& v : violations_) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

std::string InvariantReport::ToString() const {
  std::string out;
  for (const InvariantViolation& v : violations_) {
    out.append(v.invariant);
    out.append(": ");
    out.append(v.detail);
    out.append("\n");
  }
  return out;
}

bool InvariantAuditingEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

bool SetInvariantAuditing(bool enabled) {
  return EnabledFlag().exchange(enabled, std::memory_order_relaxed);
}

size_t InvariantAuditSamplePeriod() {
  static const size_t period = [] {
    if (const char* env = std::getenv("XVM_AUDIT_SAMPLE")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<size_t>(v);
    }
    return static_cast<size_t>(1);
  }();
  return period;
}

void InvariantAuditFailed(const InvariantReport& report, const char* where) {
  std::cerr << "XVM invariant audit failed after " << where << " ("
            << report.violations().size() << " violation(s)):\n"
            << report.ToString();
  std::abort();
}

}  // namespace xvm
