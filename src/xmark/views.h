#ifndef XVM_XMARK_VIEWS_H_
#define XVM_XMARK_VIEWS_H_

#include <string>
#include <vector>

#include "view/view_def.h"

namespace xvm {

/// The XMark benchmark queries used as views in the paper's evaluation
/// (§6.1, Appendix A.6): Q1, Q2, Q3, Q4, Q6, Q13 and Q17, translated into
/// the tree-pattern dialect P with the annotations the paper uses (all
/// nodes store IDs; returned nodes additionally store val/cont).
StatusOr<ViewDefinition> XMarkView(const std::string& name);

/// Names accepted by XMarkView, in paper order.
std::vector<std::string> XMarkViewNames();

/// The Q1 annotation variants of §6.3 / Figure 24: where val+cont are
/// stored relative to the view tree. Accepted names:
///   "IDs", "VC_Leaf", "VC_Root", "VC_AllButRoot", "VC_All".
StatusOr<ViewDefinition> XMarkQ1Variant(const std::string& variant);

std::vector<std::string> XMarkQ1VariantNames();

}  // namespace xvm

#endif  // XVM_XMARK_VIEWS_H_
