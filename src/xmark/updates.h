#ifndef XVM_XMARK_UPDATES_H_
#define XVM_XMARK_UPDATES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "update/update.h"

namespace xvm {

/// One XPathMark-derived update of Appendix A: a target path of one of the
/// five syntactic classes, plus the XML forest that the insertion variant
/// copies under each target. The deletion variant deletes the targets
/// (§6.1: "inserting dummy elements into each of (or deleting,
/// respectively) the nodes returned by the respective XPathMark query").
struct XMarkUpdate {
  std::string name;    // e.g. "X1_L"
  std::string klass;   // "L", "LB", "A", "O", "AO"
  std::string target;  // XPath{/,//,*,[]} with and/or predicates
  std::string forest;  // insertion payload
};

/// The full update set of Appendix A (plus X2_L / X16_A used in Figures
/// 20-21), in paper order.
const std::vector<XMarkUpdate>& XMarkUpdates();

/// Looks an update up by name.
StatusOr<XMarkUpdate> FindXMarkUpdate(const std::string& name);

/// Builds the insert / delete statement of an update.
UpdateStmt MakeInsertStmt(const XMarkUpdate& u);
UpdateStmt MakeDeleteStmt(const XMarkUpdate& u);

/// The (view, update) pairs of Figures 18-21, in figure order.
std::vector<std::pair<std::string, std::string>> XMarkViewUpdatePairs();

}  // namespace xvm

#endif  // XVM_XMARK_UPDATES_H_
