#include "xmark/updates.h"

namespace xvm {

namespace {

constexpr const char kNameForest[] =
    "<name>Martin"
    "<name>and</name><name>some</name><name>test</name><name>nodes</name>"
    "</name>";

constexpr const char kIncreaseForest[] =
    "<increase>inserted 100.00"
    "<increase>and</increase><increase>some</increase>"
    "<increase>test</increase><increase>nodes</increase>"
    "</increase>";

constexpr const char kItemForest[] =
    "<item><location>Unknown</location><quantity>1</quantity>"
    "<name>inserted item</name>"
    "<payment>Creditcard, Personal Check, Cash</payment></item>";

std::vector<XMarkUpdate> BuildUpdates() {
  return {
      // ---- Linear path expressions (A.1) ----
      {"X1_L", "L", "/site/people/person", kNameForest},
      {"X2_L", "L", "/site/open_auctions/open_auction/bidder",
       kIncreaseForest},
      {"B3_L", "L", "/site/open_auctions/open_auction/bidder",
       kIncreaseForest},
      {"E6_L", "L", "/site/regions/*/item", kItemForest},
      {"X17_L", "L", "/site/regions//item", kItemForest},
      {"B5_L", "L", "/site/regions/*/item/name", kItemForest},
      // ---- Linear with boolean filter (A.2) ----
      {"B7_LB", "LB", "//person[profile/@income]", kNameForest},
      {"B3_LB", "LB", "/site/open_auctions/open_auction[reserve]/bidder",
       kIncreaseForest},
      {"B5_LB", "LB", "/site/regions/*/item[name]", kItemForest},
      // ---- AND predicates (A.3) ----
      {"A6_A", "A", "/site/people/person[phone and homepage]", kNameForest},
      {"X3_A", "A",
       "/site/open_auctions/open_auction[privacy and bidder]/bidder",
       kIncreaseForest},
      {"B1_A", "A", "/site/regions[namerica or samerica]//item", kItemForest},
      {"E6_A", "A", "/site/regions/*/item[description][name]", kItemForest},
      {"X16_A", "A", "/site/regions/namerica/item[description and name]",
       kItemForest},
      {"X20_A", "A", "/site/regions//item[description][name]", kItemForest},
      // ---- OR predicates (A.4) ----
      {"A7_O", "O", "/site/people/person[phone or homepage]", kNameForest},
      {"X4_O", "O",
       "/site/open_auctions/open_auction[bidder or privacy]/bidder",
       kIncreaseForest},
      {"X7_O", "O", "/site/regions//item[description or name]", kItemForest},
      // Appendix B1_O uses regions[...]/item, which selects nothing on XMark
      // documents (items sit under a region element); we use the /*/ form so
      // the update actually exercises the view, as the B1_O plots do.
      {"B1_O", "O", "/site/regions[namerica or samerica]/*/item", kItemForest},
      // ---- AND + OR predicates (A.5) ----
      {"A8_AO", "AO",
       "/site/people/person[address and (phone or homepage) and "
       "(creditcard or profile)]",
       kNameForest},
      {"X5_AO", "AO",
       "/site/open_auctions/open_auction[current and (bidder or reserve)]"
       "/bidder",
       kIncreaseForest},
      {"X8_AO", "AO",
       "/site/regions//item[description and (name or mailbox)]", kItemForest},
  };
}

}  // namespace

const std::vector<XMarkUpdate>& XMarkUpdates() {
  static const std::vector<XMarkUpdate>& updates =
      *new std::vector<XMarkUpdate>(BuildUpdates());
  return updates;
}

StatusOr<XMarkUpdate> FindXMarkUpdate(const std::string& name) {
  for (const auto& u : XMarkUpdates()) {
    if (u.name == name) return u;
  }
  return Status::NotFound("unknown XMark update: " + name);
}

UpdateStmt MakeInsertStmt(const XMarkUpdate& u) {
  return UpdateStmt::InsertForest(u.target, u.forest, u.name);
}

UpdateStmt MakeDeleteStmt(const XMarkUpdate& u) {
  return UpdateStmt::Delete(u.target, u.name);
}

std::vector<std::pair<std::string, std::string>> XMarkViewUpdatePairs() {
  return {
      {"Q1", "X1_L"},   {"Q1", "A6_A"},   {"Q1", "A7_O"},  {"Q1", "A8_AO"},
      {"Q1", "B7_LB"},  {"Q2", "X2_L"},   {"Q2", "X3_A"},  {"Q2", "X4_O"},
      {"Q2", "X5_AO"},  {"Q2", "B3_LB"},  {"Q3", "X2_L"},  {"Q3", "X3_A"},
      {"Q3", "X4_O"},   {"Q3", "X5_AO"},  {"Q3", "B3_LB"}, {"Q4", "X2_L"},
      {"Q4", "X3_A"},   {"Q4", "X4_O"},   {"Q4", "X5_AO"}, {"Q4", "B3_LB"},
      {"Q6", "B1_A"},   {"Q6", "B5_LB"},  {"Q6", "E6_L"},  {"Q6", "X7_O"},
      {"Q6", "X8_AO"},  {"Q13", "B1_O"},  {"Q13", "B5_LB"},
      {"Q13", "X16_A"}, {"Q13", "X17_L"}, {"Q13", "X8_AO"},
      {"Q17", "X1_L"},  {"Q17", "A6_A"},  {"Q17", "A7_O"}, {"Q17", "A8_AO"},
      {"Q17", "B7_LB"},
  };
}

}  // namespace xvm
