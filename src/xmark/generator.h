#ifndef XVM_XMARK_GENERATOR_H_
#define XVM_XMARK_GENERATOR_H_

#include <cstdint>
#include <string>

#include "xml/document.h"

namespace xvm {

/// Configuration of the XMark-like auction-document generator. The paper
/// evaluates on XMark benchmark documents (Schmidt et al., VLDB 2002); this
/// deterministic generator reproduces the element vocabulary and shape of
/// auction.xml — site / regions / categories / people / open_auctions /
/// closed_auctions — scaled by an approximate serialized byte size, so the
/// Appendix-A views and updates are meaningful on it.
struct XMarkConfig {
  /// Approximate serialized size to aim for (e.g. 100 KB, 10 MB).
  size_t target_bytes = 100 * 1024;
  /// PRNG seed; equal configs generate identical documents.
  uint64_t seed = 7;
};

/// Generates the document into `doc` (must be empty).
void GenerateXMark(const XMarkConfig& config, Document* doc);

/// Convenience: generator + canonical increase amounts (Q3's "4.50" is
/// guaranteed to occur as a bidder increase when there are bidders).
extern const char* const kIncreaseAmounts[7];

}  // namespace xvm

#endif  // XVM_XMARK_GENERATOR_H_
