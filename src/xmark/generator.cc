#include "xmark/generator.h"

#include <array>

#include "common/rng.h"
#include "common/status.h"

namespace xvm {

const char* const kIncreaseAmounts[7] = {"1.50", "3.00",  "4.50", "6.00",
                                         "9.00", "12.00", "18.00"};

namespace {

constexpr const char* kWords[] = {
    "shakespeare", "auction", "antique",  "vintage",  "rare",     "mint",
    "condition",   "original", "signed",  "limited",  "edition",  "classic",
    "collector",   "estate",   "imported", "handmade", "restored", "pristine",
    "genuine",     "certified", "exotic",  "ornate",   "gilded",   "carved",
    "porcelain",   "bronze",    "silver",  "crystal",  "walnut",   "mahogany"};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

constexpr const char* kRegions[] = {"africa",  "asia",     "australia",
                                    "europe",  "namerica", "samerica"};

constexpr const char* kCities[] = {"Lille", "Glasgow", "Paris", "Potenza",
                                   "Saclay", "Rome"};
constexpr const char* kCountries[] = {"France", "United Kingdom", "Italy"};

/// Emits `n` space-separated words as a text child.
void Text(Document* doc, NodeHandle parent, Rng* rng, int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out.push_back(' ');
    out += kWords[rng->Uniform(kNumWords)];
  }
  doc->AppendText(parent, out);
}

void SimpleTextChild(Document* doc, NodeHandle parent, const char* label,
                     const std::string& text) {
  NodeHandle e = doc->AppendElement(parent, label);
  doc->AppendText(e, text);
}

void MakeItem(Document* doc, NodeHandle region, Rng* rng, size_t id,
              size_t num_categories) {
  NodeHandle item = doc->AppendElement(region, "item");
  doc->AppendAttribute(item, "id", "item" + std::to_string(id));
  if (rng->Chance(1, 10)) doc->AppendAttribute(item, "featured", "yes");
  SimpleTextChild(doc, item, "location",
                  kCountries[rng->Uniform(3)]);
  SimpleTextChild(doc, item, "quantity",
                  std::to_string(1 + rng->Uniform(5)));
  NodeHandle name = doc->AppendElement(item, "name");
  Text(doc, name, rng, 2);
  SimpleTextChild(doc, item, "payment", "Creditcard, Personal Check, Cash");
  // ~85% of items carry a description (predicates [description] must be
  // selective but commonly true, as in XMark).
  if (rng->Chance(85, 100)) {
    NodeHandle descr = doc->AppendElement(item, "description");
    Text(doc, descr, rng, static_cast<int>(4 + rng->Uniform(12)));
  }
  if (rng->Chance(1, 2)) {
    NodeHandle ship = doc->AppendElement(item, "shipping");
    Text(doc, ship, rng, 3);
  }
  size_t incats = rng->Uniform(3);
  for (size_t c = 0; c < incats; ++c) {
    NodeHandle ic = doc->AppendElement(item, "incategory");
    doc->AppendAttribute(ic, "category",
                         "category" + std::to_string(
                             rng->Uniform(std::max<size_t>(1, num_categories))));
  }
  // ~40% of items have a mailbox with 1-2 mails.
  if (rng->Chance(2, 5)) {
    NodeHandle mailbox = doc->AppendElement(item, "mailbox");
    size_t mails = 1 + rng->Uniform(2);
    for (size_t m = 0; m < mails; ++m) {
      NodeHandle mail = doc->AppendElement(mailbox, "mail");
      SimpleTextChild(doc, mail, "from", kWords[rng->Uniform(kNumWords)]);
      SimpleTextChild(doc, mail, "to", kWords[rng->Uniform(kNumWords)]);
      SimpleTextChild(doc, mail, "date",
                      std::to_string(1 + rng->Uniform(28)) + "/0" +
                          std::to_string(1 + rng->Uniform(9)) + "/2001");
      NodeHandle text = doc->AppendElement(mail, "text");
      Text(doc, text, rng, static_cast<int>(3 + rng->Uniform(10)));
    }
  }
}

void MakePerson(Document* doc, NodeHandle people, Rng* rng, size_t id) {
  NodeHandle person = doc->AppendElement(people, "person");
  doc->AppendAttribute(person, "id", "person" + std::to_string(id));
  NodeHandle name = doc->AppendElement(person, "name");
  Text(doc, name, rng, 2);
  SimpleTextChild(doc, person, "emailaddress",
                  std::string("mailto:") + kWords[rng->Uniform(kNumWords)] +
                      std::to_string(id) + "@example.org");
  if (rng->Chance(1, 2)) {
    SimpleTextChild(doc, person, "phone",
                    "+33 (" + std::to_string(rng->Uniform(100)) + ") " +
                        std::to_string(10000000 + rng->Uniform(89999999)));
  }
  if (rng->Chance(3, 5)) {
    NodeHandle addr = doc->AppendElement(person, "address");
    SimpleTextChild(doc, addr, "street",
                    std::to_string(1 + rng->Uniform(99)) + " " +
                        kWords[rng->Uniform(kNumWords)] + " St");
    SimpleTextChild(doc, addr, "city", kCities[rng->Uniform(6)]);
    SimpleTextChild(doc, addr, "country", kCountries[rng->Uniform(3)]);
    SimpleTextChild(doc, addr, "zipcode",
                    std::to_string(10000 + rng->Uniform(89999)));
  }
  if (rng->Chance(3, 10)) {
    SimpleTextChild(doc, person, "homepage",
                    std::string("http://www.example.org/~") +
                        kWords[rng->Uniform(kNumWords)] + std::to_string(id));
  }
  if (rng->Chance(1, 4)) {
    SimpleTextChild(doc, person, "creditcard",
                    std::to_string(1000 + rng->Uniform(8999)) + " " +
                        std::to_string(1000 + rng->Uniform(8999)));
  }
  if (rng->Chance(7, 10)) {
    NodeHandle profile = doc->AppendElement(person, "profile");
    if (rng->Chance(3, 5)) {
      doc->AppendAttribute(profile, "income",
                           std::to_string(20000 + rng->Uniform(80000)) + ".00");
    }
    size_t interests = rng->Uniform(3);
    for (size_t i = 0; i < interests; ++i) {
      NodeHandle in = doc->AppendElement(profile, "interest");
      doc->AppendAttribute(in, "category",
                           "category" + std::to_string(rng->Uniform(20)));
    }
    if (rng->Chance(1, 2)) SimpleTextChild(doc, profile, "education", "Other");
    SimpleTextChild(doc, profile, "business", rng->Chance(1, 2) ? "Yes" : "No");
    if (rng->Chance(1, 2)) {
      SimpleTextChild(doc, profile, "age",
                      std::to_string(18 + rng->Uniform(60)));
    }
  }
  if (rng->Chance(3, 10)) {
    NodeHandle watches = doc->AppendElement(person, "watches");
    size_t w = 1 + rng->Uniform(3);
    for (size_t i = 0; i < w; ++i) {
      NodeHandle watch = doc->AppendElement(watches, "watch");
      doc->AppendAttribute(watch, "open_auction",
                           "open_auction" + std::to_string(rng->Uniform(100)));
    }
  }
}

void MakeOpenAuction(Document* doc, NodeHandle auctions, Rng* rng, size_t id,
                     size_t num_persons, size_t num_items) {
  NodeHandle oa = doc->AppendElement(auctions, "open_auction");
  doc->AppendAttribute(oa, "id", "open_auction" + std::to_string(id));
  SimpleTextChild(doc, oa, "initial", kIncreaseAmounts[rng->Uniform(7)]);
  if (rng->Chance(2, 5)) {
    SimpleTextChild(doc, oa, "reserve", kIncreaseAmounts[rng->Uniform(7)]);
  }
  size_t bidders = rng->Uniform(5);
  for (size_t b = 0; b < bidders; ++b) {
    NodeHandle bidder = doc->AppendElement(oa, "bidder");
    SimpleTextChild(doc, bidder, "date",
                    std::to_string(1 + rng->Uniform(28)) + "/0" +
                        std::to_string(1 + rng->Uniform(9)) + "/2001");
    SimpleTextChild(doc, bidder, "time",
                    std::to_string(rng->Uniform(24)) + ":" +
                        std::to_string(10 + rng->Uniform(49)));
    NodeHandle pref = doc->AppendElement(bidder, "personref");
    // Cycle references so low-numbered persons (e.g. "person12" used by
    // XMark Q4) are always referenced on non-trivial documents.
    doc->AppendAttribute(
        pref, "person",
        "person" + std::to_string((id * 5 + b * 7 + rng->Uniform(13)) %
                                  std::max<size_t>(1, num_persons)));
    SimpleTextChild(doc, bidder, "increase", kIncreaseAmounts[rng->Uniform(7)]);
  }
  SimpleTextChild(doc, oa, "current", kIncreaseAmounts[rng->Uniform(7)]);
  if (rng->Chance(3, 10)) SimpleTextChild(doc, oa, "privacy", "Yes");
  NodeHandle iref = doc->AppendElement(oa, "itemref");
  doc->AppendAttribute(
      iref, "item",
      "item" + std::to_string(rng->Uniform(std::max<size_t>(1, num_items))));
  NodeHandle seller = doc->AppendElement(oa, "seller");
  doc->AppendAttribute(
      seller, "person",
      "person" +
          std::to_string(rng->Uniform(std::max<size_t>(1, num_persons))));
  NodeHandle ann = doc->AppendElement(oa, "annotation");
  NodeHandle author = doc->AppendElement(ann, "author");
  doc->AppendAttribute(
      author, "person",
      "person" +
          std::to_string(rng->Uniform(std::max<size_t>(1, num_persons))));
  NodeHandle adesc = doc->AppendElement(ann, "description");
  Text(doc, adesc, rng, static_cast<int>(3 + rng->Uniform(8)));
  SimpleTextChild(doc, oa, "quantity", std::to_string(1 + rng->Uniform(5)));
  SimpleTextChild(doc, oa, "type", rng->Chance(1, 2) ? "Regular" : "Featured");
  NodeHandle interval = doc->AppendElement(oa, "interval");
  SimpleTextChild(doc, interval, "start", "01/01/2001");
  SimpleTextChild(doc, interval, "end", "12/12/2001");
}

void MakeClosedAuction(Document* doc, NodeHandle auctions, Rng* rng, size_t id,
                       size_t num_persons, size_t num_items) {
  NodeHandle ca = doc->AppendElement(auctions, "closed_auction");
  SimpleTextChild(doc, ca, "price", kIncreaseAmounts[rng->Uniform(7)]);
  SimpleTextChild(doc, ca, "date", "15/06/2001");
  SimpleTextChild(doc, ca, "quantity", std::to_string(1 + rng->Uniform(3)));
  SimpleTextChild(doc, ca, "type", "Regular");
  NodeHandle seller = doc->AppendElement(ca, "seller");
  doc->AppendAttribute(
      seller, "person",
      "person" +
          std::to_string(rng->Uniform(std::max<size_t>(1, num_persons))));
  NodeHandle buyer = doc->AppendElement(ca, "buyer");
  doc->AppendAttribute(
      buyer, "person",
      "person" +
          std::to_string(rng->Uniform(std::max<size_t>(1, num_persons))));
  NodeHandle iref = doc->AppendElement(ca, "itemref");
  doc->AppendAttribute(
      iref, "item",
      "item" + std::to_string(rng->Uniform(std::max<size_t>(1, num_items))));
  (void)id;
}

}  // namespace

void GenerateXMark(const XMarkConfig& config, Document* doc) {
  XVM_CHECK(doc->root() == kNullNode);
  Rng rng(config.seed);

  // Entity budget: a generated entity serializes to roughly 400-700 bytes.
  const size_t total_entities =
      std::max<size_t>(20, config.target_bytes / 520);
  const size_t num_persons = std::max<size_t>(14, total_entities / 4);
  const size_t num_auctions = std::max<size_t>(4, (total_entities * 3) / 10);
  const size_t num_items = std::max<size_t>(6, (total_entities * 3) / 10);
  const size_t num_closed = std::max<size_t>(2, total_entities / 10);
  const size_t num_categories = std::max<size_t>(3, total_entities / 20);

  NodeHandle site = doc->CreateRoot("site");

  NodeHandle regions = doc->AppendElement(site, "regions");
  std::array<NodeHandle, 6> region_nodes;
  for (size_t r = 0; r < 6; ++r) {
    region_nodes[r] = doc->AppendElement(regions, kRegions[r]);
  }
  for (size_t i = 0; i < num_items; ++i) {
    MakeItem(doc, region_nodes[i % 6], &rng, i, num_categories);
  }

  NodeHandle categories = doc->AppendElement(site, "categories");
  for (size_t c = 0; c < num_categories; ++c) {
    NodeHandle cat = doc->AppendElement(categories, "category");
    doc->AppendAttribute(cat, "id", "category" + std::to_string(c));
    NodeHandle name = doc->AppendElement(cat, "name");
    Text(doc, name, &rng, 2);
    NodeHandle descr = doc->AppendElement(cat, "description");
    Text(doc, descr, &rng, 4);
  }

  NodeHandle people = doc->AppendElement(site, "people");
  for (size_t p = 0; p < num_persons; ++p) MakePerson(doc, people, &rng, p);

  NodeHandle open_auctions = doc->AppendElement(site, "open_auctions");
  for (size_t a = 0; a < num_auctions; ++a) {
    MakeOpenAuction(doc, open_auctions, &rng, a, num_persons, num_items);
  }

  NodeHandle closed_auctions = doc->AppendElement(site, "closed_auctions");
  for (size_t a = 0; a < num_closed; ++a) {
    MakeClosedAuction(doc, closed_auctions, &rng, a, num_persons, num_items);
  }
}

}  // namespace xvm
