#include "xmark/views.h"

namespace xvm {

namespace {

struct NamedPattern {
  const char* name;
  const char* dsl;
};

/// Appendix A.6, in the P dialect. All pattern nodes store IDs (the paper's
/// §6 setup); "returned" nodes also store val or cont.
constexpr NamedPattern kViews[] = {
    // Q1: person[@id] return name text().
    {"Q1", "/site{id}(/people{id}(/person{id}(/@id{id},/name{id,val})))"},
    // Q2: open_auction bidders' increase subtrees.
    {"Q2",
     "/site{id}(/open_auctions{id}(/open_auction{id}(/bidder{id}"
     "(/increase{id,cont}))))"},
    // Q3: increases equal to "4.50".
    {"Q3",
     "/site{id}(/open_auctions{id}(/open_auction{id}(/bidder{id}"
     "(/increase{id,val}[val=\"4.50\"]))))"},
    // Q4: bidders referring to person12; return increase text.
    {"Q4",
     "/site{id}(/open_auctions{id}(/open_auction{id}(/bidder{id}"
     "(/personref{id}(/@person{id}[val=\"person12\"]),/increase{id,val}))))"},
    // Q6: all items under regions (content).
    {"Q6", "/site{id}(/regions{id}(//item{id,cont}))"},
    // Q13: North-American items: name text and description content.
    {"Q13",
     "/site{id}(/regions{id}(/namerica{id}(/item{id}(/name{id,val},"
     "/description{id,cont}))))"},
    // Q17: persons with a homepage; return name text.
    {"Q17",
     "/site{id}(/people{id}(/person{id}(/homepage{id},/name{id,val})))"},
};

/// §6.3 Q1 annotation variants over /site/people/person[@id]/name.
constexpr NamedPattern kQ1Variants[] = {
    {"IDs", "/site{id}(/people{id}(/person{id}(/@id{id},/name{id})))"},
    {"VC_Leaf",
     "/site{id}(/people{id}(/person{id}(/@id{id},/name{id,val,cont})))"},
    {"VC_Root",
     "/site{id,val,cont}(/people{id}(/person{id}(/@id{id},/name{id})))"},
    {"VC_AllButRoot",
     "/site{id}(/people{id,val,cont}(/person{id,val,cont}(/@id{id},"
     "/name{id,val,cont})))"},
    {"VC_All",
     "/site{id,val,cont}(/people{id,val,cont}(/person{id,val,cont}(/@id{id},"
     "/name{id,val,cont})))"},
};

}  // namespace

StatusOr<ViewDefinition> XMarkView(const std::string& name) {
  for (const auto& v : kViews) {
    if (name == v.name) return ViewDefinition::Create(name, v.dsl);
  }
  return Status::NotFound("unknown XMark view: " + name);
}

std::vector<std::string> XMarkViewNames() {
  std::vector<std::string> out;
  for (const auto& v : kViews) out.emplace_back(v.name);
  return out;
}

StatusOr<ViewDefinition> XMarkQ1Variant(const std::string& variant) {
  for (const auto& v : kQ1Variants) {
    if (variant == v.name) {
      return ViewDefinition::Create("Q1_" + variant, v.dsl);
    }
  }
  return Status::NotFound("unknown Q1 variant: " + variant);
}

std::vector<std::string> XMarkQ1VariantNames() {
  std::vector<std::string> out;
  for (const auto& v : kQ1Variants) out.emplace_back(v.name);
  return out;
}

}  // namespace xvm
