#ifndef XVM_IDS_ORDKEY_H_
#define XVM_IDS_ORDKEY_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace xvm {

/// A dynamic sibling order key, the per-step position component of a Compact
/// Dynamic Dewey ID (Xu et al. 2009). The paper requires that structural IDs
/// "do not require node relabeling in the presence of updates": new siblings
/// can be placed before, after, or *between* any two existing siblings
/// without touching existing keys. We realize this with an ORDPATH-style
/// scheme: a key is a sequence of int64 components ordered lexicographically,
/// where a proper prefix sorts *before* any of its extensions. Between() then
/// always finds a fresh key strictly between two neighbors.
///
/// Invariants maintained by the factory functions:
///   * First() < After(First()) < After(After(First())) < ...
///   * a < Between(a, b) < b for all a < b produced by this class.
class OrdKey {
 public:
  /// An empty key is "unset"; all real keys have >= 1 component.
  OrdKey() = default;
  explicit OrdKey(std::vector<int64_t> components)
      : components_(std::move(components)) {}

  /// The key of a first child: [0].
  static OrdKey First();

  /// A key strictly greater than `a` (used for append-as-last-sibling).
  /// Single-component relative to a's head, so repeated appends do not grow
  /// key length — until the head saturates at INT64_MAX, where the key is
  /// extended with a new component instead of overflowing.
  static OrdKey After(const OrdKey& a);

  /// A key strictly smaller than `b` (insert-before-first). Saturates at
  /// INT64_MIN by extending the key with a new component instead of
  /// underflowing; requires b > the ordering's global minimum ([MIN..MIN],
  /// which the factories never produce).
  static OrdKey Before(const OrdKey& b);

  /// A key strictly between `a` and `b`. Requires a < b.
  static OrdKey Between(const OrdKey& a, const OrdKey& b);

  bool empty() const { return components_.empty(); }
  size_t size() const { return components_.size(); }
  const std::vector<int64_t>& components() const { return components_; }

  /// Lexicographic comparison; a proper prefix precedes its extensions.
  std::strong_ordering operator<=>(const OrdKey& other) const;
  bool operator==(const OrdKey& other) const = default;

  /// Compact binary encoding (zigzag varints, length-prefixed). Appends to
  /// `out`; Decode reads back from `data` at `*pos`.
  void EncodeTo(std::string* out) const;
  static bool DecodeFrom(const std::string& data, size_t* pos, OrdKey* key);

  /// Debug form: "3" or "3.0.-1".
  std::string ToString() const;

 private:
  std::vector<int64_t> components_;
};

}  // namespace xvm

#endif  // XVM_IDS_ORDKEY_H_
