#ifndef XVM_IDS_DEWEY_H_
#define XVM_IDS_DEWEY_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "ids/ordkey.h"

namespace xvm {

/// Interned label identifier (see store/label_dict.h).
using LabelId = uint32_t;

/// Sentinel for "no label" / wildcard contexts.
inline constexpr LabelId kInvalidLabel = 0xFFFFFFFFu;

/// One step of a structural ID: the label and dynamic sibling position of one
/// ancestor-or-self of the node (paper Section 2.1: "each step holding the
/// label and the relative position of one ancestor of the node").
struct DeweyStep {
  LabelId label = kInvalidLabel;
  OrdKey ord;

  bool operator==(const DeweyStep& other) const = default;
};

/// A Compact Dynamic Dewey ID. Properties required by the paper (§2.1):
///  * structural: parent / ancestor tests by comparing two IDs;
///  * self-describing: the IDs *and labels* of all ancestors are extractable
///    from the ID alone (no document access);
///  * update-stable: sibling insertion never relabels existing IDs
///    (delegated to OrdKey);
///  * compact: varint binary encoding via Encode()/Decode().
///
/// IDs sort in document (pre)order: ancestors precede descendants, siblings
/// sort by their order keys.
class DeweyId {
 public:
  DeweyId() = default;
  explicit DeweyId(std::vector<DeweyStep> steps) : steps_(std::move(steps)) {}

  /// The ID of a document root element with the given label.
  static DeweyId Root(LabelId label);

  /// The ID of a child of `parent` with `label` at position `ord`.
  DeweyId Child(LabelId label, OrdKey ord) const;

  bool empty() const { return steps_.empty(); }
  /// Depth of the node (root = 1).
  size_t depth() const { return steps_.size(); }
  const std::vector<DeweyStep>& steps() const { return steps_; }

  /// Label of the node itself (last step).
  LabelId label() const;

  /// ID of the parent; empty ID if this is a root.
  DeweyId Parent() const;

  /// ID of the ancestor at depth `d` (1-based). Requires 1 <= d <= depth().
  DeweyId AncestorAtDepth(size_t d) const;

  /// True iff `this` is the parent of `other` (strict, one level).
  bool IsParentOf(const DeweyId& other) const;

  /// True iff `this` is a proper ancestor of `other`.
  bool IsAncestorOf(const DeweyId& other) const;

  /// True iff `this` equals `other` or is a proper ancestor of it.
  bool IsAncestorOrSelf(const DeweyId& other) const;

  /// Label path from root to this node (one LabelId per step).
  std::vector<LabelId> LabelPath() const;

  /// PathFilter (paper §3.4): true iff some *proper ancestor* of this node
  /// carries `label`. Decided from the ID alone.
  bool HasAncestorLabeled(LabelId label) const;

  /// True iff this node or some proper ancestor carries `label`.
  bool HasAncestorOrSelfLabeled(LabelId label) const;

  /// Document-order comparison (pre-order: ancestor < descendant).
  std::strong_ordering operator<=>(const DeweyId& other) const;
  bool operator==(const DeweyId& other) const = default;

  /// Compact binary encoding; the encoded form is also usable as a hash/map
  /// key and preserves nothing but the ID content.
  std::string Encode() const;
  static bool Decode(const std::string& data, DeweyId* id);

  /// Debug form using a label-name resolver, e.g. "a1.c1.b1"-style:
  /// "a[0].c[0].b[1]".
  std::string ToString() const;

 private:
  std::vector<DeweyStep> steps_;
};

/// PathNavigate (paper §3.4): maps each ID in `ids` to its parent ID,
/// dropping roots; output is sorted in document order with duplicates
/// removed. Input need not be sorted.
std::vector<DeweyId> PathNavigateToParents(const std::vector<DeweyId>& ids);

}  // namespace xvm

#endif  // XVM_IDS_DEWEY_H_
