#include "ids/ordkey.h"

#include "common/status.h"
#include "common/varint.h"

namespace xvm {

OrdKey OrdKey::First() { return OrdKey({0}); }

OrdKey OrdKey::After(const OrdKey& a) {
  XVM_CHECK(!a.empty());
  if (a.components_[0] == INT64_MAX) {
    // head+1 would overflow. Saturate by extending `a` itself: a proper
    // prefix sorts before all its extensions, so a.1 > a (and > any earlier
    // sibling, all of which are <= a). Appends past the boundary grow the
    // key by one component each — the price of never relabeling.
    std::vector<int64_t> out(a.components_);
    out.push_back(1);
    return OrdKey(std::move(out));
  }
  // Truncating to head+1 keeps keys short under the common append workload.
  return OrdKey({a.components_[0] + 1});
}

OrdKey OrdKey::Before(const OrdKey& b) {
  XVM_CHECK(!b.empty());
  // Decrement the first component that has room, truncating the rest; the
  // shared prefix keeps the result < b. Decrementing *to* INT64_MIN would
  // strand later callers (nothing sorts below an all-MIN key), so saturate
  // one early: go to MIN but append a 0, leaving the whole [MIN, x < 0]
  // range below the result for further Before() calls.
  for (size_t i = 0; i < b.components_.size(); ++i) {
    const int64_t c = b.components_[i];
    if (c == INT64_MIN) continue;
    std::vector<int64_t> out(b.components_.begin(),
                             b.components_.begin() + i + 1);
    if (c == INT64_MIN + 1) {
      out[i] = INT64_MIN;
      out.push_back(0);
    } else {
      out[i] = c - 1;
    }
    return OrdKey(std::move(out));
  }
  // Every component is INT64_MIN: b is the global minimum of this ordering
  // (a prefix precedes its extensions, so not even an extension helps). The
  // factory functions never produce such a key — see the saturation above.
  XVM_CHECK(false && "OrdKey::Before: no key below the global minimum");
  return OrdKey();
}

OrdKey OrdKey::Between(const OrdKey& a, const OrdKey& b) {
  XVM_CHECK(!a.empty() && !b.empty());
  XVM_CHECK(a < b);
  const auto& ca = a.components_;
  const auto& cb = b.components_;
  size_t i = 0;
  while (i < ca.size() && i < cb.size() && ca[i] == cb[i]) ++i;
  if (i < ca.size() && i < cb.size()) {
    // Components differ at i with ca[i] < cb[i]. The gap is computed in
    // uint64 space: cb[i] - ca[i] as int64 overflows for far-apart endpoints
    // of opposite signs (e.g. Between([INT64_MIN], [INT64_MAX])).
    const uint64_t gap =
        static_cast<uint64_t>(cb[i]) - static_cast<uint64_t>(ca[i]);
    if (gap > 1) {
      std::vector<int64_t> out(ca.begin(), ca.begin() + i + 1);
      out[i] = static_cast<int64_t>(static_cast<uint64_t>(ca[i]) + gap / 2);
      return OrdKey(std::move(out));
    }
    // Adjacent heads: any extension of `a` stays below `b`.
    std::vector<int64_t> out(ca);
    out.push_back(1);
    return OrdKey(std::move(out));
  }
  // `a` is a proper prefix of `b` (a < b guarantees this orientation).
  XVM_CHECK(i == ca.size() && i < cb.size());
  std::vector<int64_t> out(cb.begin(), cb.begin() + i + 1);
  if (cb.size() > i + 1) {
    // b extends past i, so a..cb[i] itself (a prefix of b) is already < b.
    return OrdKey(std::move(out));
  }
  // b's only extra component is cb[i]; the keys strictly between a and b are
  // exactly a.[x] with x < cb[i]. None exist when cb[i] == INT64_MIN (b is
  // then a's immediate successor) — the factories never create that key.
  XVM_CHECK(cb[i] != INT64_MIN);
  out[i] = cb[i] - 1;
  return OrdKey(std::move(out));
}

std::strong_ordering OrdKey::operator<=>(const OrdKey& other) const {
  const size_t n = std::min(components_.size(), other.components_.size());
  for (size_t i = 0; i < n; ++i) {
    if (components_[i] != other.components_[i]) {
      return components_[i] <=> other.components_[i];
    }
  }
  return components_.size() <=> other.components_.size();
}

void OrdKey::EncodeTo(std::string* out) const {
  PutVarint64(out, components_.size());
  for (int64_t c : components_) PutVarintSigned64(out, c);
}

bool OrdKey::DecodeFrom(const std::string& data, size_t* pos, OrdKey* key) {
  uint64_t n = 0;
  if (!GetVarint64(data, pos, &n)) return false;
  std::vector<int64_t> comps;
  comps.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    int64_t c = 0;
    if (!GetVarintSigned64(data, pos, &c)) return false;
    comps.push_back(c);
  }
  *key = OrdKey(std::move(comps));
  return true;
}

std::string OrdKey::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(components_[i]);
  }
  return out;
}

}  // namespace xvm
