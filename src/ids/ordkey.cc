#include "ids/ordkey.h"

#include "common/status.h"
#include "common/varint.h"

namespace xvm {

OrdKey OrdKey::First() { return OrdKey({0}); }

OrdKey OrdKey::After(const OrdKey& a) {
  XVM_CHECK(!a.empty());
  // Truncating to head+1 keeps keys short under the common append workload.
  return OrdKey({a.components_[0] + 1});
}

OrdKey OrdKey::Before(const OrdKey& b) {
  XVM_CHECK(!b.empty());
  return OrdKey({b.components_[0] - 1});
}

OrdKey OrdKey::Between(const OrdKey& a, const OrdKey& b) {
  XVM_CHECK(!a.empty() && !b.empty());
  XVM_CHECK(a < b);
  const auto& ca = a.components_;
  const auto& cb = b.components_;
  size_t i = 0;
  while (i < ca.size() && i < cb.size() && ca[i] == cb[i]) ++i;
  if (i < ca.size() && i < cb.size()) {
    // Components differ at i with ca[i] < cb[i].
    if (cb[i] - ca[i] > 1) {
      std::vector<int64_t> out(ca.begin(), ca.begin() + i + 1);
      // Midpoint avoids overflow for arbitrary int64 endpoints.
      out[i] = ca[i] + (cb[i] - ca[i]) / 2;
      return OrdKey(std::move(out));
    }
    // Adjacent heads: any extension of `a` stays below `b`.
    std::vector<int64_t> out(ca);
    out.push_back(1);
    return OrdKey(std::move(out));
  }
  // `a` is a proper prefix of `b` (a < b guarantees this orientation).
  XVM_CHECK(i == ca.size() && i < cb.size());
  std::vector<int64_t> out(cb.begin(), cb.begin() + i + 1);
  if (cb.size() > i + 1) {
    // b extends past i, so a..cb[i] itself (a prefix of b) is already < b.
    return OrdKey(std::move(out));
  }
  out[i] = cb[i] - 1;
  return OrdKey(std::move(out));
}

std::strong_ordering OrdKey::operator<=>(const OrdKey& other) const {
  const size_t n = std::min(components_.size(), other.components_.size());
  for (size_t i = 0; i < n; ++i) {
    if (components_[i] != other.components_[i]) {
      return components_[i] <=> other.components_[i];
    }
  }
  return components_.size() <=> other.components_.size();
}

void OrdKey::EncodeTo(std::string* out) const {
  PutVarint64(out, components_.size());
  for (int64_t c : components_) PutVarintSigned64(out, c);
}

bool OrdKey::DecodeFrom(const std::string& data, size_t* pos, OrdKey* key) {
  uint64_t n = 0;
  if (!GetVarint64(data, pos, &n)) return false;
  std::vector<int64_t> comps;
  comps.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    int64_t c = 0;
    if (!GetVarintSigned64(data, pos, &c)) return false;
    comps.push_back(c);
  }
  *key = OrdKey(std::move(comps));
  return true;
}

std::string OrdKey::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(components_[i]);
  }
  return out;
}

}  // namespace xvm
