#include "ids/dewey.h"

#include <algorithm>

#include "common/status.h"
#include "common/varint.h"

namespace xvm {

DeweyId DeweyId::Root(LabelId label) {
  return DeweyId({DeweyStep{label, OrdKey::First()}});
}

DeweyId DeweyId::Child(LabelId label, OrdKey ord) const {
  std::vector<DeweyStep> steps = steps_;
  steps.push_back(DeweyStep{label, std::move(ord)});
  return DeweyId(std::move(steps));
}

LabelId DeweyId::label() const {
  XVM_CHECK(!steps_.empty());
  return steps_.back().label;
}

DeweyId DeweyId::Parent() const {
  XVM_CHECK(!steps_.empty());
  return DeweyId(
      std::vector<DeweyStep>(steps_.begin(), steps_.end() - 1));
}

DeweyId DeweyId::AncestorAtDepth(size_t d) const {
  XVM_CHECK(d >= 1 && d <= steps_.size());
  return DeweyId(std::vector<DeweyStep>(steps_.begin(), steps_.begin() + d));
}

bool DeweyId::IsParentOf(const DeweyId& other) const {
  return other.steps_.size() == steps_.size() + 1 && IsAncestorOf(other);
}

bool DeweyId::IsAncestorOf(const DeweyId& other) const {
  if (steps_.size() >= other.steps_.size()) return false;
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i] != other.steps_[i]) return false;
  }
  return true;
}

bool DeweyId::IsAncestorOrSelf(const DeweyId& other) const {
  return *this == other || IsAncestorOf(other);
}

std::vector<LabelId> DeweyId::LabelPath() const {
  std::vector<LabelId> path;
  path.reserve(steps_.size());
  for (const auto& s : steps_) path.push_back(s.label);
  return path;
}

bool DeweyId::HasAncestorLabeled(LabelId label) const {
  if (steps_.empty()) return false;
  for (size_t i = 0; i + 1 < steps_.size(); ++i) {
    if (steps_[i].label == label) return true;
  }
  return false;
}

bool DeweyId::HasAncestorOrSelfLabeled(LabelId label) const {
  for (const auto& s : steps_) {
    if (s.label == label) return true;
  }
  return false;
}

std::strong_ordering DeweyId::operator<=>(const DeweyId& other) const {
  const size_t n = std::min(steps_.size(), other.steps_.size());
  for (size_t i = 0; i < n; ++i) {
    // Sibling position decides order; two distinct siblings never share an
    // order key, and a shared (label, ord) prefix means a shared ancestor.
    auto c = steps_[i].ord <=> other.steps_[i].ord;
    if (c != std::strong_ordering::equal) return c;
    if (steps_[i].label != other.steps_[i].label) {
      return steps_[i].label <=> other.steps_[i].label;
    }
  }
  return steps_.size() <=> other.steps_.size();
}

std::string DeweyId::Encode() const {
  std::string out;
  PutVarint64(&out, steps_.size());
  for (const auto& s : steps_) {
    PutVarint64(&out, s.label);
    s.ord.EncodeTo(&out);
  }
  return out;
}

bool DeweyId::Decode(const std::string& data, DeweyId* id) {
  size_t pos = 0;
  uint64_t n = 0;
  if (!GetVarint64(data, &pos, &n)) return false;
  std::vector<DeweyStep> steps;
  steps.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t label = 0;
    if (!GetVarint64(data, &pos, &label)) return false;
    OrdKey ord;
    if (!OrdKey::DecodeFrom(data, &pos, &ord)) return false;
    steps.push_back(DeweyStep{static_cast<LabelId>(label), std::move(ord)});
  }
  if (pos != data.size()) return false;
  *id = DeweyId(std::move(steps));
  return true;
}

std::string DeweyId::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += "L" + std::to_string(steps_[i].label) + "[" +
           steps_[i].ord.ToString() + "]";
  }
  return out;
}

std::vector<DeweyId> PathNavigateToParents(const std::vector<DeweyId>& ids) {
  std::vector<DeweyId> parents;
  parents.reserve(ids.size());
  for (const auto& id : ids) {
    if (id.depth() > 1) parents.push_back(id.Parent());
  }
  std::sort(parents.begin(), parents.end());
  parents.erase(std::unique(parents.begin(), parents.end()), parents.end());
  return parents;
}

}  // namespace xvm
