#include "xml/parser.h"

#include <cctype>
#include <string>

namespace xvm {

namespace {

/// Recursive-descent parser over a string_view with positional error
/// reporting.
class Parser {
 public:
  Parser(std::string_view input, Document* doc) : in_(input), doc_(doc) {}

  Status ParseInto(NodeHandle parent_or_null, bool forest) {
    SkipMisc();
    if (forest) {
      while (!AtEnd()) {
        XVM_RETURN_IF_ERROR(ParseContentItem(parent_or_null));
        SkipMisc();
      }
      return Status::Ok();
    }
    if (AtEnd() || Peek() != '<') {
      return Err("expected a root element");
    }
    NodeHandle root;
    XVM_RETURN_IF_ERROR(ParseElement(kNullNode, &root));
    SkipMisc();
    if (!AtEnd()) return Err("trailing content after root element");
    return Status::Ok();
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < in_.size() ? in_[pos_ + off] : '\0';
  }
  bool Match(std::string_view s) {
    if (in_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  /// Skips whitespace, XML declarations, comments and DOCTYPE.
  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (Match("<?")) {
        while (!AtEnd() && !Match("?>")) ++pos_;
      } else if (in_.substr(pos_, 4) == "<!--") {
        pos_ += 4;
        while (!AtEnd() && !Match("-->")) ++pos_;
      } else if (in_.substr(pos_, 2) == "<!" &&
                 in_.substr(pos_, 9) != "<![CDATA[") {
        // DOCTYPE or similar declaration; skip to matching '>'.
        pos_ += 2;  // consume "<!"
        int depth = 0;
        while (!AtEnd()) {
          char c = in_[pos_++];
          if (c == '<') ++depth;
          if (c == '>') {
            if (depth == 0) break;
            --depth;
          }
        }
      } else {
        return;
      }
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  Status ParseName(std::string* name) {
    if (AtEnd() || !IsNameStart(Peek())) return Err("expected a name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    *name = std::string(in_.substr(start, pos_ - start));
    return Status::Ok();
  }

  Status DecodeEntity(std::string* out) {
    // Called with pos_ on '&'.
    ++pos_;
    size_t semi = in_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 10) {
      return Err("unterminated entity reference");
    }
    std::string_view ent = in_.substr(pos_, semi - pos_);
    pos_ = semi + 1;
    if (ent == "amp") *out += '&';
    else if (ent == "lt") *out += '<';
    else if (ent == "gt") *out += '>';
    else if (ent == "quot") *out += '"';
    else if (ent == "apos") *out += '\'';
    else if (!ent.empty() && ent[0] == '#') {
      int base = 10;
      std::string_view digits = ent.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      // Parse the digits by hand: strtol would silently stop at the first
      // non-digit ("&#12abc;" decoded as 12) and cannot distinguish "no
      // digits at all" from code point 0.
      if (digits.empty()) return Err("bad character reference");
      long code = 0;
      for (char c : digits) {
        int d;
        if (c >= '0' && c <= '9') d = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f') d = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F') d = c - 'A' + 10;
        else return Err("bad character reference");
        code = code * base + d;
        if (code > 0x10FFFF) return Err("bad character reference");
      }
      if (code <= 0) return Err("bad character reference");
      if (code >= 0xD800 && code <= 0xDFFF) {
        // Surrogates are not characters; encoding them would produce
        // invalid UTF-8 (CESU-8).
        return Err("bad character reference");
      }
      // Minimal UTF-8 encoding.
      if (code < 0x80) {
        *out += static_cast<char>(code);
      } else if (code < 0x800) {
        *out += static_cast<char>(0xC0 | (code >> 6));
        *out += static_cast<char>(0x80 | (code & 0x3F));
      } else if (code < 0x10000) {
        *out += static_cast<char>(0xE0 | (code >> 12));
        *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        *out += static_cast<char>(0x80 | (code & 0x3F));
      } else {
        *out += static_cast<char>(0xF0 | (code >> 18));
        *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
        *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        *out += static_cast<char>(0x80 | (code & 0x3F));
      }
    } else {
      return Err("unknown entity '&" + std::string(ent) + ";'");
    }
    return Status::Ok();
  }

  Status ParseAttrValue(std::string* value) {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Err("expected a quoted attribute value");
    }
    char quote = Peek();
    ++pos_;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        XVM_RETURN_IF_ERROR(DecodeEntity(value));
      } else {
        *value += in_[pos_++];
      }
    }
    if (AtEnd()) return Err("unterminated attribute value");
    ++pos_;  // closing quote
    return Status::Ok();
  }

  Status ParseElement(NodeHandle parent, NodeHandle* out) {
    if (!Match("<")) return Err("expected '<'");
    std::string name;
    XVM_RETURN_IF_ERROR(ParseName(&name));
    NodeHandle elem = parent == kNullNode ? doc_->CreateRoot(name)
                                          : doc_->AppendElement(parent, name);
    if (out != nullptr) *out = elem;

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Err("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') break;
      std::string attr_name;
      XVM_RETURN_IF_ERROR(ParseName(&attr_name));
      SkipWhitespace();
      if (!Match("=")) return Err("expected '=' after attribute name");
      SkipWhitespace();
      std::string value;
      XVM_RETURN_IF_ERROR(ParseAttrValue(&value));
      doc_->AppendAttribute(elem, attr_name, value);
    }
    if (Match("/>")) return Status::Ok();
    if (!Match(">")) return Err("expected '>'");

    // Content.
    for (;;) {
      if (AtEnd()) return Err("unterminated element <" + name + ">");
      if (in_.substr(pos_, 2) == "</") {
        pos_ += 2;
        std::string close;
        XVM_RETURN_IF_ERROR(ParseName(&close));
        SkipWhitespace();
        if (!Match(">")) return Err("expected '>' in end tag");
        if (close != name) {
          return Err("mismatched end tag </" + close + "> for <" + name + ">");
        }
        return Status::Ok();
      }
      XVM_RETURN_IF_ERROR(ParseContentItem(elem));
    }
  }

  /// Parses one content item (element, text run, comment, CDATA) under
  /// `parent`.
  Status ParseContentItem(NodeHandle parent) {
    if (in_.substr(pos_, 4) == "<!--") {
      pos_ += 4;
      while (!AtEnd() && !Match("-->")) ++pos_;
      return Status::Ok();
    }
    if (Match("<![CDATA[")) {
      std::string text;
      while (!AtEnd() && !Match("]]>")) text += in_[pos_++];
      if (!text.empty()) doc_->AppendText(parent, text);
      return Status::Ok();
    }
    if (!AtEnd() && Peek() == '<') {
      if (PeekAt(1) == '?') {
        pos_ += 2;
        while (!AtEnd() && !Match("?>")) ++pos_;
        return Status::Ok();
      }
      return ParseElement(parent, nullptr);
    }
    // Text run.
    std::string text;
    while (!AtEnd() && Peek() != '<') {
      if (Peek() == '&') {
        XVM_RETURN_IF_ERROR(DecodeEntity(&text));
      } else {
        text += in_[pos_++];
      }
    }
    // Whitespace-only runs between elements are ignored (the paper's data
    // model has no mixed-content significance for indentation).
    bool all_space = true;
    for (char c : text) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        all_space = false;
        break;
      }
    }
    if (!all_space) doc_->AppendText(parent, text);
    return Status::Ok();
  }

  std::string_view in_;
  Document* doc_;
  size_t pos_ = 0;
};

}  // namespace

Status ParseDocument(std::string_view xml, Document* doc) {
  XVM_CHECK(doc->root() == kNullNode);
  Parser p(xml, doc);
  return p.ParseInto(kNullNode, /*forest=*/false);
}

Status ParseForest(std::string_view xml, Document* doc) {
  XVM_CHECK(doc->root() == kNullNode);
  NodeHandle root = doc->CreateRoot(kForestRootLabel);
  Parser p(xml, doc);
  return p.ParseInto(root, /*forest=*/true);
}

}  // namespace xvm
