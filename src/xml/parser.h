#ifndef XVM_XML_PARSER_H_
#define XVM_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/document.h"

namespace xvm {

/// Parses an XML document (single root element) into `doc`, which must be
/// empty. Supports the fragment used throughout the paper: elements,
/// attributes, text, XML declaration, comments, DOCTYPE (skipped), CDATA,
/// and the five predefined entities plus numeric character references.
Status ParseDocument(std::string_view xml, Document* doc);

/// Parses an XML forest (zero or more sibling trees, as appears in
/// `insert xml into q` statements, §2.3). The trees become the children of a
/// synthetic "#forest" root in `doc`.
Status ParseForest(std::string_view xml, Document* doc);

/// Reserved root label used by ParseForest.
inline constexpr const char kForestRootLabel[] = "#forest";

}  // namespace xvm

#endif  // XVM_XML_PARSER_H_
