#include "xml/serializer.h"

#include "common/status.h"
#include "common/strings.h"

namespace xvm {

namespace {

void SerializeRec(const Document& doc, NodeHandle h, std::string* out) {
  const Node& n = doc.node(h);
  switch (n.kind) {
    case NodeKind::kText:
      out->append(XmlEscape(n.text));
      return;
    case NodeKind::kAttribute:
      // Attributes are serialized by their parent's start tag.
      return;
    case NodeKind::kElement:
      break;
  }
  const std::string& name = doc.dict().Name(n.label);
  out->push_back('<');
  out->append(name);
  // Emit attribute children into the start tag.
  bool has_content = false;
  for (NodeHandle c = n.first_child; c != kNullNode;
       c = doc.node(c).next_sibling) {
    const Node& cn = doc.node(c);
    if (cn.kind == NodeKind::kAttribute) {
      const std::string& aname = doc.dict().Name(cn.label);
      out->push_back(' ');
      out->append(aname.substr(1));  // strip '@'
      out->append("=\"");
      out->append(XmlEscape(cn.text));
      out->push_back('"');
    } else {
      has_content = true;
    }
  }
  if (!has_content) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  for (NodeHandle c = n.first_child; c != kNullNode;
       c = doc.node(c).next_sibling) {
    SerializeRec(doc, c, out);
  }
  out->append("</");
  out->append(name);
  out->push_back('>');
}

}  // namespace

std::string SerializeSubtree(const Document& doc, NodeHandle h) {
  // An attribute as the *root* of the serialized subtree has no start tag
  // to be folded into, so its cont is its escaped value — the same rule a
  // text node follows. (As a child, SerializeRec still folds it into the
  // parent's start tag.) This keeps cont("@a") consistent with val("@a")
  // up to escaping instead of the empty string.
  const Node& n = doc.node(h);
  if (n.kind == NodeKind::kAttribute) return XmlEscape(n.text);
  std::string out;
  SerializeRec(doc, h, &out);
  return out;
}

std::string SerializeDocument(const Document& doc) {
  XVM_CHECK(doc.root() != kNullNode);
  return SerializeSubtree(doc, doc.root());
}

}  // namespace xvm
