#ifndef XVM_XML_SERIALIZER_H_
#define XVM_XML_SERIALIZER_H_

#include <string>

#include "xml/document.h"

namespace xvm {

/// Serializes the subtree rooted at `h` to XML text. Attributes are emitted
/// inside the start tag; text is XML-escaped. This is the `cont` annotation
/// of the paper's tree-pattern dialect.
std::string SerializeSubtree(const Document& doc, NodeHandle h);

/// Serializes the whole document (requires a root).
std::string SerializeDocument(const Document& doc);

}  // namespace xvm

#endif  // XVM_XML_SERIALIZER_H_
