#include "xml/document.h"

#include <algorithm>

#include "common/status.h"
#include "common/strings.h"
#include "xml/serializer.h"

namespace xvm {

Document::Document(std::shared_ptr<LabelDict> dict)
    : dict_(dict ? std::move(dict) : std::make_shared<LabelDict>()) {}

NodeHandle Document::NewNode(NodeKind kind, LabelId label,
                             std::string_view text) {
  NodeHandle h = static_cast<NodeHandle>(nodes_.size());
  Node n;
  n.kind = kind;
  n.label = label;
  n.text = std::string(text);
  nodes_.push_back(std::move(n));
  ++num_alive_;
  // Rough serialized footprint: tags or text plus delimiters.
  approx_bytes_ += text.size() + (kind == NodeKind::kElement
                                      ? 2 * dict_->Name(label).size() + 5
                                      : 4);
  return h;
}

OrdKey Document::NextChildOrd(NodeHandle parent) const {
  const Node& p = nodes_[parent];
  if (p.last_child == kNullNode) return OrdKey::First();
  return OrdKey::After(nodes_[p.last_child].id.steps().back().ord);
}

void Document::LinkAsLastChild(NodeHandle parent, NodeHandle child) {
  Node& p = nodes_[parent];
  Node& c = nodes_[child];
  c.parent = parent;
  c.prev_sibling = p.last_child;
  if (p.last_child != kNullNode) nodes_[p.last_child].next_sibling = child;
  p.last_child = child;
  if (p.first_child == kNullNode) p.first_child = child;
}

void Document::RegisterId(NodeHandle h) {
  id_index_[nodes_[h].id.Encode()] = h;
}

void Document::UnregisterId(NodeHandle h) {
  id_index_.erase(nodes_[h].id.Encode());
}

NodeHandle Document::CreateRoot(std::string_view label) {
  XVM_CHECK(root_ == kNullNode);
  NodeHandle h = NewNode(NodeKind::kElement, dict_->Intern(label), "");
  nodes_[h].id = DeweyId::Root(nodes_[h].label);
  root_ = h;
  RegisterId(h);
  return h;
}

NodeHandle Document::AppendElement(NodeHandle parent, std::string_view label) {
  XVM_CHECK(IsAlive(parent));
  NodeHandle h = NewNode(NodeKind::kElement, dict_->Intern(label), "");
  nodes_[h].id = nodes_[parent].id.Child(nodes_[h].label,
                                         NextChildOrd(parent));
  LinkAsLastChild(parent, h);
  RegisterId(h);
  return h;
}

NodeHandle Document::AppendText(NodeHandle parent, std::string_view text) {
  XVM_CHECK(IsAlive(parent));
  NodeHandle h = NewNode(NodeKind::kText, dict_->text_label(), text);
  nodes_[h].id = nodes_[parent].id.Child(nodes_[h].label,
                                         NextChildOrd(parent));
  LinkAsLastChild(parent, h);
  RegisterId(h);
  return h;
}

NodeHandle Document::AppendAttribute(NodeHandle parent, std::string_view name,
                                     std::string_view value) {
  XVM_CHECK(IsAlive(parent));
  std::string attr_label = "@" + std::string(name);
  NodeHandle h = NewNode(NodeKind::kAttribute, dict_->Intern(attr_label),
                         value);
  nodes_[h].id = nodes_[parent].id.Child(nodes_[h].label,
                                         NextChildOrd(parent));
  LinkAsLastChild(parent, h);
  RegisterId(h);
  return h;
}

NodeHandle Document::InsertElementAfter(NodeHandle after,
                                        std::string_view label) {
  XVM_CHECK(IsAlive(after));
  const Node& a = nodes_[after];
  XVM_CHECK(a.parent != kNullNode);
  NodeHandle parent = a.parent;
  const OrdKey& a_ord = a.id.steps().back().ord;
  OrdKey ord =
      a.next_sibling == kNullNode
          ? OrdKey::After(a_ord)
          : OrdKey::Between(a_ord,
                            nodes_[a.next_sibling].id.steps().back().ord);

  NodeHandle h = NewNode(NodeKind::kElement, dict_->Intern(label), "");
  nodes_[h].id = nodes_[parent].id.Child(nodes_[h].label, std::move(ord));
  // Splice between `after` and its next sibling.
  Node& an = nodes_[after];
  NodeHandle next = an.next_sibling;
  nodes_[h].parent = parent;
  nodes_[h].prev_sibling = after;
  nodes_[h].next_sibling = next;
  an.next_sibling = h;
  if (next != kNullNode) {
    nodes_[next].prev_sibling = h;
  } else {
    nodes_[parent].last_child = h;
  }
  RegisterId(h);
  return h;
}

NodeHandle Document::InsertElementBefore(NodeHandle before,
                                         std::string_view label) {
  XVM_CHECK(IsAlive(before));
  const Node& b = nodes_[before];
  XVM_CHECK(b.parent != kNullNode);
  NodeHandle parent = b.parent;
  const OrdKey& b_ord = b.id.steps().back().ord;
  OrdKey ord =
      b.prev_sibling == kNullNode
          ? OrdKey::Before(b_ord)
          : OrdKey::Between(nodes_[b.prev_sibling].id.steps().back().ord,
                            b_ord);

  NodeHandle h = NewNode(NodeKind::kElement, dict_->Intern(label), "");
  nodes_[h].id = nodes_[parent].id.Child(nodes_[h].label, std::move(ord));
  Node& bn = nodes_[before];
  NodeHandle prev = bn.prev_sibling;
  nodes_[h].parent = parent;
  nodes_[h].next_sibling = before;
  nodes_[h].prev_sibling = prev;
  bn.prev_sibling = h;
  if (prev != kNullNode) {
    nodes_[prev].next_sibling = h;
  } else {
    nodes_[parent].first_child = h;
  }
  RegisterId(h);
  return h;
}

NodeHandle Document::CopySubtreeAsChild(NodeHandle parent,
                                        const Document& src_doc,
                                        NodeHandle src) {
  XVM_CHECK(IsAlive(parent));
  const Node& s = src_doc.node(src);
  NodeHandle copy = kNullNode;
  switch (s.kind) {
    case NodeKind::kElement:
      copy = AppendElement(parent, src_doc.dict().Name(s.label));
      break;
    case NodeKind::kText:
      copy = AppendText(parent, s.text);
      break;
    case NodeKind::kAttribute: {
      // Strip the '@' prefix; AppendAttribute re-adds it.
      const std::string& name = src_doc.dict().Name(s.label);
      copy = AppendAttribute(parent, std::string_view(name).substr(1), s.text);
      break;
    }
  }
  for (NodeHandle c = s.first_child; c != kNullNode;
       c = src_doc.node(c).next_sibling) {
    CopySubtreeAsChild(copy, src_doc, c);
  }
  return copy;
}

std::vector<NodeHandle> Document::DeleteSubtree(NodeHandle n) {
  XVM_CHECK(IsAlive(n));
  std::vector<NodeHandle> removed = SubtreeNodes(n);
  // Unlink from parent.
  Node& nd = nodes_[n];
  if (nd.parent != kNullNode) {
    Node& p = nodes_[nd.parent];
    if (nd.prev_sibling != kNullNode) {
      nodes_[nd.prev_sibling].next_sibling = nd.next_sibling;
    } else {
      p.first_child = nd.next_sibling;
    }
    if (nd.next_sibling != kNullNode) {
      nodes_[nd.next_sibling].prev_sibling = nd.prev_sibling;
    } else {
      p.last_child = nd.prev_sibling;
    }
  } else {
    root_ = kNullNode;
  }
  for (NodeHandle h : removed) {
    UnregisterId(h);
    nodes_[h].alive = false;
    --num_alive_;
  }
  return removed;
}

NodeHandle Document::RestoreNode(NodeHandle parent, NodeKind kind,
                                 LabelId label, std::string_view text,
                                 DeweyId id) {
  XVM_CHECK(label < dict_->size());
  NodeHandle h = NewNode(kind, label, text);
  nodes_[h].id = std::move(id);
  if (parent == kNullNode) {
    XVM_CHECK(root_ == kNullNode);
    root_ = h;
  } else {
    XVM_CHECK(IsAlive(parent));
    LinkAsLastChild(parent, h);
  }
  RegisterId(h);
  return h;
}

NodeHandle Document::FindById(const DeweyId& id) const {
  auto it = id_index_.find(id.Encode());
  if (it == id_index_.end()) return kNullNode;
  return nodes_[it->second].alive ? it->second : kNullNode;
}

std::string Document::StringValue(NodeHandle h) const {
  const Node& n = nodes_[h];
  if (n.kind != NodeKind::kElement) return n.text;
  std::string out;
  for (NodeHandle c : SubtreeNodes(h)) {
    const Node& cn = nodes_[c];
    if (cn.kind == NodeKind::kText) out += cn.text;
  }
  return out;
}

std::string Document::Content(NodeHandle h) const {
  return SerializeSubtree(*this, h);
}

std::vector<NodeHandle> Document::SubtreeNodes(NodeHandle h) const {
  std::vector<NodeHandle> out;
  std::vector<NodeHandle> stack = {h};
  while (!stack.empty()) {
    NodeHandle cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    // Push children in reverse so document order pops first.
    std::vector<NodeHandle> kids;
    for (NodeHandle c = nodes_[cur].first_child; c != kNullNode;
         c = nodes_[c].next_sibling) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

std::vector<NodeHandle> Document::AllNodes() const {
  if (root_ == kNullNode) return {};
  return SubtreeNodes(root_);
}

std::vector<NodeHandle> Document::Children(NodeHandle h) const {
  std::vector<NodeHandle> out;
  for (NodeHandle c = nodes_[h].first_child; c != kNullNode;
       c = nodes_[c].next_sibling) {
    out.push_back(c);
  }
  return out;
}

}  // namespace xvm
