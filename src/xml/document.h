#ifndef XVM_XML_DOCUMENT_H_
#define XVM_XML_DOCUMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ids/dewey.h"
#include "store/label_dict.h"

namespace xvm {

/// Index of a node inside a Document's arena.
using NodeHandle = uint32_t;
inline constexpr NodeHandle kNullNode = 0xFFFFFFFFu;

/// Node kinds of the paper's data model (§2.1): ordered labeled trees with
/// element, attribute and text nodes.
enum class NodeKind : uint8_t {
  kElement,
  kAttribute,
  kText,
};

/// One tree node. Stored by value in the document arena; navigation uses
/// sibling/child links so subtree insertion and deletion are O(subtree).
struct Node {
  NodeKind kind = NodeKind::kElement;
  bool alive = true;
  LabelId label = kInvalidLabel;  // element name, "@name", or "#text"
  std::string text;               // text content / attribute value
  NodeHandle parent = kNullNode;
  NodeHandle first_child = kNullNode;
  NodeHandle last_child = kNullNode;
  NodeHandle prev_sibling = kNullNode;
  NodeHandle next_sibling = kNullNode;
  DeweyId id;
};

/// An in-memory XML document: an arena of nodes carrying Compact Dynamic
/// Dewey IDs, with an ID -> node map so stored IDs (e.g. in materialized
/// views) can be resolved back to nodes when recomputing `val`/`cont`.
///
/// Update operations (AppendChild / InsertSiblingAfter / CopySubtree /
/// DeleteSubtree) assign dynamic IDs and never relabel existing nodes.
class Document {
 public:
  /// Creates an empty document. If `dict` is null a private dictionary is
  /// created; passing a shared dictionary lets several documents (e.g. a
  /// store document and parsed update fragments) agree on LabelIds.
  explicit Document(std::shared_ptr<LabelDict> dict = nullptr);

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  LabelDict& dict() { return *dict_; }
  const LabelDict& dict() const { return *dict_; }
  const std::shared_ptr<LabelDict>& dict_ptr() const { return dict_; }

  /// Creates the root element. Requires no root yet.
  NodeHandle CreateRoot(std::string_view label);

  /// Appends a new element child under `parent`.
  NodeHandle AppendElement(NodeHandle parent, std::string_view label);

  /// Appends a new text child under `parent`.
  NodeHandle AppendText(NodeHandle parent, std::string_view text);

  /// Appends an attribute node under `parent` (label stored as "@name").
  NodeHandle AppendAttribute(NodeHandle parent, std::string_view name,
                             std::string_view value);

  /// Inserts a new element immediately after sibling `after` (same parent).
  /// Demonstrates relabel-free dynamic IDs; XQuery ins-into appends instead.
  NodeHandle InsertElementAfter(NodeHandle after, std::string_view label);

  /// Inserts a new element immediately before sibling `before`.
  NodeHandle InsertElementBefore(NodeHandle before, std::string_view label);

  /// Deep-copies the subtree rooted at `src` (from `src_doc`, which may be
  /// this document) as a new last child of `parent`. Fresh IDs are assigned
  /// in the destination context (paper §3.4 apply-insert). Returns the root
  /// of the copy.
  NodeHandle CopySubtreeAsChild(NodeHandle parent, const Document& src_doc,
                                NodeHandle src);

  /// Unlinks and kills the subtree rooted at `n`. Returns the handles of all
  /// removed nodes (document order). IDs of survivors are untouched.
  std::vector<NodeHandle> DeleteSubtree(NodeHandle n);

  /// Node accessors.
  const Node& node(NodeHandle h) const { return nodes_[h]; }
  bool IsAlive(NodeHandle h) const {
    return h < nodes_.size() && nodes_[h].alive;
  }
  NodeHandle root() const { return root_; }
  size_t num_alive() const { return num_alive_; }
  size_t arena_size() const { return nodes_.size(); }

  /// Resolves a structural ID to its node, or kNullNode if absent/dead.
  NodeHandle FindById(const DeweyId& id) const;

  /// XPath string value: concatenation of all text descendants in document
  /// order (§2.2). For text/attribute nodes, their own text.
  std::string StringValue(NodeHandle h) const;

  /// Serialized subtree ("cont" annotation).
  std::string Content(NodeHandle h) const;

  /// Collects the subtree of `h` (including `h`) in document order.
  std::vector<NodeHandle> SubtreeNodes(NodeHandle h) const;

  /// Collects every alive node in document order.
  std::vector<NodeHandle> AllNodes() const;

  /// Convenience: children of `h` in order (attributes included).
  std::vector<NodeHandle> Children(NodeHandle h) const;

  /// Total serialized size estimate in bytes (for size-targeted generation).
  size_t ApproxSerializedBytes() const { return approx_bytes_; }

  /// Restores one node with an explicit, already-assigned structural ID —
  /// the durability recovery path (view/persist.h LoadDocumentFromBytes),
  /// which must reproduce the exact Dewey IDs of the checkpointed document
  /// so that stored view tuples keep resolving. `parent` is kNullNode for
  /// the root; nodes must be restored in document order. `label` must
  /// already be interned. The caller validates ID/parent/order consistency;
  /// this method only links and registers.
  NodeHandle RestoreNode(NodeHandle parent, NodeKind kind, LabelId label,
                         std::string_view text, DeweyId id);

  /// Direct mutable access to a node, so tests can inject deliberate
  /// corruption (e.g. a dangling Dewey parent) and assert the invariant
  /// auditor (store/audit.h) reports it. Never used by production code.
  Node& MutableNodeForTesting(NodeHandle h) { return nodes_[h]; }

 private:
  NodeHandle NewNode(NodeKind kind, LabelId label, std::string_view text);
  void LinkAsLastChild(NodeHandle parent, NodeHandle child);
  OrdKey NextChildOrd(NodeHandle parent) const;
  void RegisterId(NodeHandle h);
  void UnregisterId(NodeHandle h);

  std::shared_ptr<LabelDict> dict_;
  std::vector<Node> nodes_;
  std::unordered_map<std::string, NodeHandle> id_index_;  // encoded ID -> node
  NodeHandle root_ = kNullNode;
  size_t num_alive_ = 0;
  size_t approx_bytes_ = 0;
};

}  // namespace xvm

#endif  // XVM_XML_DOCUMENT_H_
