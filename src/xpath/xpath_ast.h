#ifndef XVM_XPATH_XPATH_AST_H_
#define XVM_XPATH_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace xvm {

/// AST for the XPath{/,//,*,[]} dialect used by the paper for update target
/// paths and view main paths (§2.2, Appendix A): child and descendant axes,
/// name / '*' / attribute node tests, and predicates combining relative
/// paths, string comparisons, `and` and `or`.

enum class XPathAxis : uint8_t {
  kChild,       // '/'
  kDescendant,  // '//' (descendant-or-self::node()/child:: shorthand — here
                //       simply "descendant" which matches the paper's use)
};

enum class XPathTest : uint8_t {
  kName,       // element name
  kAnyElement, // '*'
  kAttribute,  // '@name'
  kSelf,       // '.' (only meaningful inside predicates)
  kText,       // 'text()'
};

struct XPathPredicate;

/// One location step.
struct XPathStep {
  XPathAxis axis = XPathAxis::kChild;
  XPathTest test = XPathTest::kName;
  std::string name;  // element name or attribute name (without '@')
  std::vector<XPathPredicate> predicates;
};

/// A relative path (sequence of steps from a context node). An empty step
/// list with leading_self means ".".
struct XPathRelPath {
  std::vector<XPathStep> steps;
  bool leading_self = false;  // path started with '.'
};

/// Predicate expression tree.
struct XPathPredicate {
  enum class Kind : uint8_t {
    kExists,    // [ relpath ]
    kEquals,    // [ relpath = "literal" ]
    kNotEquals, // [ relpath != "literal" ]
    kAnd,
    kOr,
  };
  Kind kind = Kind::kExists;
  XPathRelPath path;       // for kExists / kEquals / kNotEquals
  std::string literal;     // for kEquals / kNotEquals
  std::vector<XPathPredicate> children;  // for kAnd / kOr (exactly 2)
};

/// An absolute path expression.
struct XPathExpr {
  std::vector<XPathStep> steps;

  std::string ToString() const;
};

/// Renders one step including its predicates, e.g. "//bidder[increase]".
/// Used by diagnostics that point at the offending step of an expression.
std::string XPathStepToString(const XPathStep& step);

/// Parses an absolute XPath expression ("/a/b[c and @d='x']//e").
StatusOr<XPathExpr> ParseXPath(std::string_view text);

}  // namespace xvm

#endif  // XVM_XPATH_XPATH_AST_H_
