#ifndef XVM_XPATH_XPATH_EVAL_H_
#define XVM_XPATH_XPATH_EVAL_H_

#include <vector>

#include "xml/document.h"
#include "xpath/xpath_ast.h"

namespace xvm {

/// Evaluates an absolute XPath expression against `doc`, returning matching
/// nodes in document order without duplicates. This is the "Find Target
/// Nodes" substrate (the role Saxon plays in the paper's implementation,
/// §6.1): update statements locate their target nodes with it.
std::vector<NodeHandle> EvalXPath(const Document& doc, const XPathExpr& expr);

/// Evaluates the relative path `steps` starting from `context`.
std::vector<NodeHandle> EvalXPathFrom(const Document& doc, NodeHandle context,
                                      const std::vector<XPathStep>& steps);

/// Parses and evaluates in one call; returns InvalidArgument on parse error.
StatusOr<std::vector<NodeHandle>> EvalXPathString(const Document& doc,
                                                  std::string_view path);

}  // namespace xvm

#endif  // XVM_XPATH_XPATH_EVAL_H_
