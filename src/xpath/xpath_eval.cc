#include "xpath/xpath_eval.h"

#include <algorithm>

namespace xvm {

namespace {

bool MatchesTest(const Document& doc, NodeHandle h, const XPathStep& step) {
  const Node& n = doc.node(h);
  switch (step.test) {
    case XPathTest::kName:
      return n.kind == NodeKind::kElement &&
             doc.dict().Name(n.label) == step.name;
    case XPathTest::kAnyElement:
      return n.kind == NodeKind::kElement;
    case XPathTest::kAttribute:
      return n.kind == NodeKind::kAttribute &&
             doc.dict().Name(n.label) == "@" + step.name;
    case XPathTest::kText:
      return n.kind == NodeKind::kText;
    case XPathTest::kSelf:
      return true;
  }
  return false;
}

bool EvalPredicate(const Document& doc, NodeHandle ctx,
                   const XPathPredicate& pred);

bool EvalStep(const Document& doc, const std::vector<NodeHandle>& contexts,
              const XPathStep& step, std::vector<NodeHandle>* out) {
  for (NodeHandle ctx : contexts) {
    if (step.axis == XPathAxis::kChild) {
      for (NodeHandle c = doc.node(ctx).first_child; c != kNullNode;
           c = doc.node(c).next_sibling) {
        if (MatchesTest(doc, c, step)) out->push_back(c);
      }
    } else {
      // Descendant axis: every node strictly below ctx.
      for (NodeHandle d : doc.SubtreeNodes(ctx)) {
        if (d == ctx) continue;
        if (MatchesTest(doc, d, step)) out->push_back(d);
      }
    }
  }
  // Apply predicates.
  if (!step.predicates.empty()) {
    std::vector<NodeHandle> filtered;
    for (NodeHandle h : *out) {
      bool keep = true;
      for (const auto& p : step.predicates) {
        if (!EvalPredicate(doc, h, p)) {
          keep = false;
          break;
        }
      }
      if (keep) filtered.push_back(h);
    }
    *out = std::move(filtered);
  }
  // Document order, no duplicates (descendant axis from nested contexts can
  // produce both).
  std::sort(out->begin(), out->end(),
            [&doc](NodeHandle a, NodeHandle b) {
              return doc.node(a).id < doc.node(b).id;
            });
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return true;
}

std::vector<NodeHandle> EvalStepsFrom(const Document& doc,
                                      std::vector<NodeHandle> contexts,
                                      const std::vector<XPathStep>& steps) {
  for (const auto& step : steps) {
    std::vector<NodeHandle> next;
    EvalStep(doc, contexts, step, &next);
    contexts = std::move(next);
    if (contexts.empty()) break;
  }
  return contexts;
}

bool EvalPredicate(const Document& doc, NodeHandle ctx,
                   const XPathPredicate& pred) {
  switch (pred.kind) {
    case XPathPredicate::Kind::kAnd:
      return EvalPredicate(doc, ctx, pred.children[0]) &&
             EvalPredicate(doc, ctx, pred.children[1]);
    case XPathPredicate::Kind::kOr:
      return EvalPredicate(doc, ctx, pred.children[0]) ||
             EvalPredicate(doc, ctx, pred.children[1]);
    case XPathPredicate::Kind::kExists:
    case XPathPredicate::Kind::kEquals:
    case XPathPredicate::Kind::kNotEquals: {
      std::vector<NodeHandle> nodes;
      if (pred.path.leading_self && pred.path.steps.empty()) {
        nodes = {ctx};
      } else {
        nodes = EvalStepsFrom(doc, {ctx}, pred.path.steps);
      }
      if (pred.kind == XPathPredicate::Kind::kExists) return !nodes.empty();
      // XPath existential comparison semantics: true iff *some* node's
      // string value compares as required.
      for (NodeHandle h : nodes) {
        bool eq = doc.StringValue(h) == pred.literal;
        if (pred.kind == XPathPredicate::Kind::kEquals ? eq : !eq) return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace

std::vector<NodeHandle> EvalXPath(const Document& doc, const XPathExpr& expr) {
  if (doc.root() == kNullNode) return {};
  // The implicit context of an absolute path is the document node, whose
  // only child is the root element and whose descendants are all nodes.
  std::vector<NodeHandle> contexts;
  const XPathStep& first = expr.steps[0];
  if (first.axis == XPathAxis::kChild) {
    if (MatchesTest(doc, doc.root(), first)) contexts.push_back(doc.root());
  } else {
    for (NodeHandle h : doc.AllNodes()) {
      if (MatchesTest(doc, h, first)) contexts.push_back(h);
    }
  }
  // Predicates of the first step.
  if (!first.predicates.empty()) {
    std::vector<NodeHandle> filtered;
    for (NodeHandle h : contexts) {
      bool keep = true;
      for (const auto& p : first.predicates) {
        if (!EvalPredicate(doc, h, p)) {
          keep = false;
          break;
        }
      }
      if (keep) filtered.push_back(h);
    }
    contexts = std::move(filtered);
  }
  std::vector<XPathStep> rest(expr.steps.begin() + 1, expr.steps.end());
  return EvalStepsFrom(doc, std::move(contexts), rest);
}

std::vector<NodeHandle> EvalXPathFrom(const Document& doc, NodeHandle context,
                                      const std::vector<XPathStep>& steps) {
  return EvalStepsFrom(doc, {context}, steps);
}

StatusOr<std::vector<NodeHandle>> EvalXPathString(const Document& doc,
                                                  std::string_view path) {
  XVM_ASSIGN_OR_RETURN(XPathExpr expr, ParseXPath(path));
  return EvalXPath(doc, expr);
}

}  // namespace xvm
