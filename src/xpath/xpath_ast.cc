#include "xpath/xpath_ast.h"

namespace xvm {

namespace {

void AppendStep(const XPathStep& s, std::string* out) {
  out->append(s.axis == XPathAxis::kChild ? "/" : "//");
  switch (s.test) {
    case XPathTest::kName: out->append(s.name); break;
    case XPathTest::kAnyElement: out->append("*"); break;
    case XPathTest::kAttribute: out->append("@").append(s.name); break;
    case XPathTest::kSelf: out->append("."); break;
    case XPathTest::kText: out->append("text()"); break;
  }
  for (const auto& p : s.predicates) {
    out->push_back('[');
    // Re-render predicates recursively.
    std::string rendered;
    std::vector<const XPathPredicate*> todo = {&p};
    // Simple recursive lambda via explicit function.
    struct Renderer {
      static void Render(const XPathPredicate& pred, std::string* o) {
        switch (pred.kind) {
          case XPathPredicate::Kind::kAnd:
          case XPathPredicate::Kind::kOr: {
            o->push_back('(');
            Render(pred.children[0], o);
            o->append(pred.kind == XPathPredicate::Kind::kAnd ? " and "
                                                              : " or ");
            Render(pred.children[1], o);
            o->push_back(')');
            break;
          }
          case XPathPredicate::Kind::kExists:
          case XPathPredicate::Kind::kEquals:
          case XPathPredicate::Kind::kNotEquals: {
            if (pred.path.leading_self && pred.path.steps.empty()) {
              o->push_back('.');
            } else {
              std::string path;
              for (size_t i = 0; i < pred.path.steps.size(); ++i) {
                AppendStep(pred.path.steps[i], &path);
              }
              // Relative paths drop the leading '/'.
              if (!path.empty() && path[0] == '/' && path.substr(0, 2) != "//") {
                path = path.substr(1);
              }
              o->append(path);
            }
            if (pred.kind == XPathPredicate::Kind::kEquals) {
              o->append("=\"").append(pred.literal).append("\"");
            } else if (pred.kind == XPathPredicate::Kind::kNotEquals) {
              o->append("!=\"").append(pred.literal).append("\"");
            }
            break;
          }
        }
      }
    };
    (void)todo;
    Renderer::Render(p, &rendered);
    out->append(rendered);
    out->push_back(']');
  }
}

}  // namespace

std::string XPathExpr::ToString() const {
  std::string out;
  for (const auto& s : steps) AppendStep(s, &out);
  return out;
}

std::string XPathStepToString(const XPathStep& step) {
  std::string out;
  AppendStep(step, &out);
  return out;
}

}  // namespace xvm
