#include <cctype>

#include "xpath/xpath_ast.h"

namespace xvm {

namespace {

/// Recursive-descent parser for the XPath{/,//,*,[]} dialect with `and`/`or`
/// predicates and string comparisons.
class XPathParser {
 public:
  explicit XPathParser(std::string_view in) : in_(in) {}

  StatusOr<XPathExpr> Parse() {
    XPathExpr expr;
    XVM_RETURN_IF_ERROR(ParseSteps(/*absolute=*/true, &expr.steps));
    SkipWs();
    if (pos_ != in_.size()) return Err("trailing characters");
    if (expr.steps.empty()) return Err("empty path");
    return expr;
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return AtEnd() ? '\0' : in_[pos_]; }
  bool Match(std::string_view s) {
    if (in_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }
  /// Matches a keyword followed by a non-name character.
  bool MatchKeyword(std::string_view kw) {
    if (in_.substr(pos_, kw.size()) != kw) return false;
    size_t after = pos_ + kw.size();
    if (after < in_.size() && IsNameChar(in_[after])) return false;
    pos_ = after;
    return true;
  }
  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  Status Err(const std::string& m) const {
    return Status::ParseError("xpath: " + m + " at offset " +
                              std::to_string(pos_));
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.' || c == ':';
  }

  Status ParseName(std::string* name) {
    if (AtEnd() || !IsNameStart(Peek())) return Err("expected a name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    *name = std::string(in_.substr(start, pos_ - start));
    return Status::Ok();
  }

  /// Parses '/'- or '//'-separated steps. For absolute paths the first
  /// separator is mandatory; for relative paths the first step has an
  /// implicit child axis.
  Status ParseSteps(bool absolute, std::vector<XPathStep>* steps) {
    bool first = true;
    for (;;) {
      SkipWs();
      XPathAxis axis;
      if (Match("//")) {
        axis = XPathAxis::kDescendant;
      } else if (Match("/")) {
        axis = XPathAxis::kChild;
      } else if (first && !absolute) {
        axis = XPathAxis::kChild;
      } else {
        return Status::Ok();  // no more steps
      }
      if (first && absolute && axis == XPathAxis::kChild && AtEnd()) {
        return Err("expected a step after '/'");
      }
      XPathStep step;
      step.axis = axis;
      XVM_RETURN_IF_ERROR(ParseNodeTest(&step));
      XVM_RETURN_IF_ERROR(ParsePredicates(&step));
      steps->push_back(std::move(step));
      first = false;
      SkipWs();
      // Steps continue only with '/' or '//'.
      if (AtEnd() || Peek() != '/') return Status::Ok();
    }
  }

  Status ParseNodeTest(XPathStep* step) {
    SkipWs();
    if (Match("*")) {
      step->test = XPathTest::kAnyElement;
      return Status::Ok();
    }
    if (Match("@")) {
      step->test = XPathTest::kAttribute;
      return ParseName(&step->name);
    }
    if (Match("text()")) {
      step->test = XPathTest::kText;
      return Status::Ok();
    }
    step->test = XPathTest::kName;
    XVM_RETURN_IF_ERROR(ParseName(&step->name));
    if (Match("()")) return Err("unsupported function call");
    return Status::Ok();
  }

  Status ParsePredicates(XPathStep* step) {
    for (;;) {
      SkipWs();
      if (!Match("[")) return Status::Ok();
      XPathPredicate pred;
      XVM_RETURN_IF_ERROR(ParseOrExpr(&pred));
      SkipWs();
      if (!Match("]")) return Err("expected ']'");
      step->predicates.push_back(std::move(pred));
    }
  }

  Status ParseOrExpr(XPathPredicate* out) {
    XPathPredicate left;
    XVM_RETURN_IF_ERROR(ParseAndExpr(&left));
    for (;;) {
      SkipWs();
      if (!MatchKeyword("or")) break;
      XPathPredicate right;
      XVM_RETURN_IF_ERROR(ParseAndExpr(&right));
      XPathPredicate combined;
      combined.kind = XPathPredicate::Kind::kOr;
      combined.children.push_back(std::move(left));
      combined.children.push_back(std::move(right));
      left = std::move(combined);
    }
    *out = std::move(left);
    return Status::Ok();
  }

  Status ParseAndExpr(XPathPredicate* out) {
    XPathPredicate left;
    XVM_RETURN_IF_ERROR(ParsePrimary(&left));
    for (;;) {
      SkipWs();
      if (!MatchKeyword("and")) break;
      XPathPredicate right;
      XVM_RETURN_IF_ERROR(ParsePrimary(&right));
      XPathPredicate combined;
      combined.kind = XPathPredicate::Kind::kAnd;
      combined.children.push_back(std::move(left));
      combined.children.push_back(std::move(right));
      left = std::move(combined);
    }
    *out = std::move(left);
    return Status::Ok();
  }

  Status ParsePrimary(XPathPredicate* out) {
    SkipWs();
    if (Match("(")) {
      XVM_RETURN_IF_ERROR(ParseOrExpr(out));
      SkipWs();
      if (!Match(")")) return Err("expected ')'");
      return Status::Ok();
    }
    // A relative path, optionally compared to a string literal.
    XPathPredicate pred;
    if (Match(".")) {
      pred.path.leading_self = true;
      // Optional continuation "./a/b" — not used by the workloads but cheap.
      XVM_RETURN_IF_ERROR(ParseSteps(/*absolute=*/true, &pred.path.steps));
    } else {
      XVM_RETURN_IF_ERROR(ParseSteps(/*absolute=*/false, &pred.path.steps));
      if (pred.path.steps.empty()) return Err("expected a predicate path");
    }
    SkipWs();
    if (Match("!=")) {
      pred.kind = XPathPredicate::Kind::kNotEquals;
      XVM_RETURN_IF_ERROR(ParseLiteral(&pred.literal));
    } else if (Match("=")) {
      pred.kind = XPathPredicate::Kind::kEquals;
      XVM_RETURN_IF_ERROR(ParseLiteral(&pred.literal));
    } else {
      pred.kind = XPathPredicate::Kind::kExists;
    }
    *out = std::move(pred);
    return Status::Ok();
  }

  Status ParseLiteral(std::string* out) {
    SkipWs();
    char quote = Peek();
    if (quote != '"' && quote != '\'') return Err("expected a string literal");
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) ++pos_;
    if (AtEnd()) return Err("unterminated string literal");
    *out = std::string(in_.substr(start, pos_ - start));
    ++pos_;
    return Status::Ok();
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<XPathExpr> ParseXPath(std::string_view text) {
  return XPathParser(text).Parse();
}

}  // namespace xvm
