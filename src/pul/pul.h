#ifndef XVM_PUL_PUL_H_
#define XVM_PUL_PUL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/canonical.h"
#include "update/update.h"
#include "xml/document.h"

namespace xvm {

/// The §5 optimization framework for sequences of updates, re-implementing
/// the applicable subset of Cavalieri et al.'s rules over the two
/// fundamental operations the paper considers (§5.2):
///   * ins↘(v, P) — insert forest P after the last child of node v;
///   * del(v)     — delete node v.
///
/// Operations address nodes by structural ID, so — as in the original work —
/// the rules run without access to the source document.

/// Reference to a node inside another op's (not yet applied) payload forest:
/// `child_steps` are 0-based child indexes walked from tree `tree_index`'s
/// root. Used by aggregation rule D6.
struct PayloadRef {
  int producer_op = -1;
  int tree_index = 0;
  std::vector<int> child_steps;
};

/// One atomic update operation.
struct AtomicOp {
  enum class Kind : uint8_t { kInsertInto, kDelete };

  Kind kind = Kind::kDelete;
  /// Target node's structural ID (when addressing a document node).
  DeweyId target;
  /// Set when the target lives inside an earlier op's payload (D6 case).
  std::optional<PayloadRef> payload_ref;
  /// Insert payload: a forest document (root label "#forest", children are
  /// the trees, in insertion order). Owned; null for deletes.
  std::shared_ptr<Document> payload;

  static AtomicOp Del(DeweyId target);
  static AtomicOp InsInto(DeweyId target, std::shared_ptr<Document> forest);
};

using OpSequence = std::vector<AtomicOp>;

/// Expands a statement-level PUL into a sequence of atomic operations
/// (Figure 13's CP step feeding the optimizer): insert ops own a copy of
/// their payload trees, targets become structural IDs.
OpSequence PulToAtomicOps(const Document& doc, const Pul& pul);

/// Statistics of one optimization pass.
struct ReduceStats {
  size_t o1_removed = 0;  // ins/del followed by del on the same node
  size_t o3_removed = 0;  // ins/del followed by del on an ancestor
  size_t i5_merged = 0;   // inserts on the same node combined

  size_t TotalRemoved() const { return o1_removed + o3_removed + i5_merged; }
};

/// Reduction rules O1, O3, I5 (Figure 14) applied to one sequence.
/// Returns the reduced sequence; `stats` (optional) reports what fired.
OpSequence ReduceOps(const OpSequence& ops, ReduceStats* stats = nullptr);

/// A detected conflict between two parallel PULs (Figure 15).
struct Conflict {
  enum class Rule : uint8_t { kIO, kLO, kNLO };
  Rule rule;
  size_t op1;  // index into the first sequence
  size_t op2;  // index into the second sequence
};

/// Conflict rules IO, LO, NLO for PULs to be run in parallel. Returns the
/// conflicts; integration itself is left to the caller's resolution policy
/// (the framework "allows PUL producers to define conflict resolution
/// policies").
std::vector<Conflict> DetectConflicts(const OpSequence& a,
                                      const OpSequence& b);

/// Integrates two parallel, conflict-free sequences (fails with
/// FailedPrecondition if DetectConflicts is non-empty).
StatusOr<OpSequence> IntegrateParallel(const OpSequence& a,
                                       const OpSequence& b);

/// Statistics of one aggregation pass.
struct AggregateStats {
  size_t a1_merged = 0;  // same-target inserts combined across sequences
  size_t d6_applied = 0; // second-PUL ops applied inside first-PUL payloads
};

/// Aggregation rules A1/A2 and D6 (Figure 16) for sequential composition
/// Δ1;Δ2. Ops of `b` carrying a payload_ref into ops of `a` are executed
/// against the payload forest (D6); same-target inserts merge (A1/A2).
OpSequence AggregateSequential(const OpSequence& a, const OpSequence& b,
                               AggregateStats* stats = nullptr);

/// Applies an atomic-op sequence to the document in order, resolving targets
/// by ID (ops whose target vanished are skipped, matching XQuery Update's
/// snapshot-with-invalidation semantics). Payload-ref ops resolve against
/// the trees inserted by their producer op. Maintains `store` if non-null.
ApplyResult ApplyAtomicOps(Document* doc, const OpSequence& ops,
                           StoreIndex* store);

}  // namespace xvm

#endif  // XVM_PUL_PUL_H_
