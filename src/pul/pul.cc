#include "pul/pul.h"

#include <algorithm>

#include "xml/parser.h"

namespace xvm {

AtomicOp AtomicOp::Del(DeweyId target) {
  AtomicOp op;
  op.kind = Kind::kDelete;
  op.target = std::move(target);
  return op;
}

AtomicOp AtomicOp::InsInto(DeweyId target, std::shared_ptr<Document> forest) {
  AtomicOp op;
  op.kind = Kind::kInsertInto;
  op.target = std::move(target);
  op.payload = std::move(forest);
  return op;
}

OpSequence PulToAtomicOps(const Document& doc, const Pul& pul) {
  OpSequence ops;
  for (const auto& del : pul.deletes) {
    if (!doc.IsAlive(del.target)) continue;
    ops.push_back(AtomicOp::Del(doc.node(del.target).id));
  }
  for (const auto& ins : pul.inserts) {
    if (!doc.IsAlive(ins.target)) continue;
    auto forest = std::make_shared<Document>(doc.dict_ptr());
    NodeHandle froot = forest->CreateRoot(kForestRootLabel);
    forest->CopySubtreeAsChild(froot, *ins.src_doc, ins.src_root);
    ops.push_back(
        AtomicOp::InsInto(doc.node(ins.target).id, std::move(forest)));
  }
  return ops;
}

namespace {

/// Appends all payload trees of `src` into `dst`'s payload forest.
void MergePayloadInto(const AtomicOp& src, AtomicOp* dst) {
  XVM_CHECK(src.payload != nullptr && dst->payload != nullptr);
  const Document& sdoc = *src.payload;
  for (NodeHandle t = sdoc.node(sdoc.root()).first_child; t != kNullNode;
       t = sdoc.node(t).next_sibling) {
    dst->payload->CopySubtreeAsChild(dst->payload->root(), sdoc, t);
  }
}

}  // namespace

OpSequence ReduceOps(const OpSequence& ops, ReduceStats* stats) {
  const size_t n = ops.size();
  std::vector<bool> drop(n, false);

  // Stage 1: O1 / O3 — an op is useless if a *later* delete targets the same
  // node (O1) or an ancestor of it (O3). Payload-ref ops are kept out of
  // this reasoning (their effective target is not a document node).
  for (size_t i = 0; i < n; ++i) {
    if (ops[i].payload_ref.has_value()) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (ops[j].kind != AtomicOp::Kind::kDelete ||
          ops[j].payload_ref.has_value()) {
        continue;
      }
      if (ops[j].target == ops[i].target) {
        drop[i] = true;
        if (stats != nullptr) ++stats->o1_removed;
        break;
      }
      if (ops[j].target.IsAncestorOf(ops[i].target)) {
        drop[i] = true;
        if (stats != nullptr) ++stats->o3_removed;
        break;
      }
    }
  }

  // Stage 1: I5 — combine insertions on the same target into the first one,
  // concatenating payload forests in order. Payloads are copy-on-merge: an
  // op that never absorbs another keeps sharing the caller's forest.
  OpSequence out;
  std::vector<int> insert_index_by_target;  // parallel: out index of insert
  std::vector<DeweyId> insert_targets;
  std::vector<bool> owns_payload;           // parallel to `out`
  for (size_t i = 0; i < n; ++i) {
    if (drop[i]) continue;
    const AtomicOp& op = ops[i];
    if (op.kind == AtomicOp::Kind::kInsertInto && !op.payload_ref.has_value()) {
      int found = -1;
      for (size_t k = 0; k < insert_targets.size(); ++k) {
        if (insert_targets[k] == op.target) {
          found = insert_index_by_target[k];
          break;
        }
      }
      if (found >= 0) {
        AtomicOp& sink = out[static_cast<size_t>(found)];
        if (!owns_payload[static_cast<size_t>(found)]) {
          // First merge into this op: clone so the input stays untouched.
          auto forest = std::make_shared<Document>(sink.payload->dict_ptr());
          NodeHandle froot = forest->CreateRoot(kForestRootLabel);
          const Document& src = *sink.payload;
          for (NodeHandle t = src.node(src.root()).first_child;
               t != kNullNode; t = src.node(t).next_sibling) {
            forest->CopySubtreeAsChild(froot, src, t);
          }
          sink.payload = std::move(forest);
          owns_payload[static_cast<size_t>(found)] = true;
        }
        MergePayloadInto(op, &sink);
        if (stats != nullptr) ++stats->i5_merged;
        continue;
      }
      insert_targets.push_back(op.target);
      insert_index_by_target.push_back(static_cast<int>(out.size()));
      out.push_back(op);
      owns_payload.push_back(false);
      continue;
    }
    out.push_back(op);
    owns_payload.push_back(false);
  }
  return out;
}

std::vector<Conflict> DetectConflicts(const OpSequence& a,
                                      const OpSequence& b) {
  std::vector<Conflict> conflicts;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      const AtomicOp& op1 = a[i];
      const AtomicOp& op2 = b[j];
      if (op1.payload_ref.has_value() || op2.payload_ref.has_value()) continue;
      // IO: two insertions on the same target — result depends on order.
      if (op1.kind == AtomicOp::Kind::kInsertInto &&
          op2.kind == AtomicOp::Kind::kInsertInto &&
          op1.target == op2.target) {
        conflicts.push_back({Conflict::Rule::kIO, i, j});
        continue;
      }
      // LO: delete in one PUL, insert on the same node in the other.
      if (op1.kind == AtomicOp::Kind::kDelete &&
          op2.kind == AtomicOp::Kind::kInsertInto &&
          op1.target == op2.target) {
        conflicts.push_back({Conflict::Rule::kLO, i, j});
        continue;
      }
      // NLO: delete of an ancestor of the other PUL's insertion target.
      if (op1.kind == AtomicOp::Kind::kDelete &&
          op2.kind == AtomicOp::Kind::kInsertInto &&
          op1.target.IsAncestorOf(op2.target)) {
        conflicts.push_back({Conflict::Rule::kNLO, i, j});
        continue;
      }
    }
  }
  return conflicts;
}

StatusOr<OpSequence> IntegrateParallel(const OpSequence& a,
                                       const OpSequence& b) {
  std::vector<Conflict> conflicts = DetectConflicts(a, b);
  if (!conflicts.empty()) {
    return Status::FailedPrecondition(
        "cannot integrate: " + std::to_string(conflicts.size()) +
        " conflict(s) between the PULs; a resolution policy is required");
  }
  OpSequence merged = a;
  merged.insert(merged.end(), b.begin(), b.end());
  return merged;
}

namespace {

/// Resolves a payload-ref path inside `forest`; kNullNode if out of range.
NodeHandle ResolvePayloadPath(const Document& forest, int tree_index,
                              const std::vector<int>& child_steps) {
  NodeHandle cur = forest.node(forest.root()).first_child;
  for (int i = 0; i < tree_index && cur != kNullNode; ++i) {
    cur = forest.node(cur).next_sibling;
  }
  for (int step : child_steps) {
    if (cur == kNullNode) return kNullNode;
    NodeHandle c = forest.node(cur).first_child;
    for (int i = 0; i < step && c != kNullNode; ++i) {
      c = forest.node(c).next_sibling;
    }
    cur = c;
  }
  return cur;
}

}  // namespace

OpSequence AggregateSequential(const OpSequence& a, const OpSequence& b,
                               AggregateStats* stats) {
  OpSequence out = a;
  // Index of inserts in `out` by target for A1.
  for (const AtomicOp& op2 : b) {
    // D6: op2 targets a node inside an op of the first PUL's payload.
    if (op2.payload_ref.has_value() &&
        op2.kind == AtomicOp::Kind::kInsertInto) {
      const PayloadRef& ref = *op2.payload_ref;
      if (ref.producer_op >= 0 &&
          static_cast<size_t>(ref.producer_op) < out.size() &&
          out[static_cast<size_t>(ref.producer_op)].payload != nullptr) {
        AtomicOp& producer = out[static_cast<size_t>(ref.producer_op)];
        NodeHandle anchor = ResolvePayloadPath(*producer.payload,
                                               ref.tree_index,
                                               ref.child_steps);
        if (anchor != kNullNode) {
          const Document& p2 = *op2.payload;
          for (NodeHandle t = p2.node(p2.root()).first_child; t != kNullNode;
               t = p2.node(t).next_sibling) {
            producer.payload->CopySubtreeAsChild(anchor, p2, t);
          }
          if (stats != nullptr) ++stats->d6_applied;
          continue;
        }
      }
    }
    // A1/A2: merge same-target inserts.
    if (op2.kind == AtomicOp::Kind::kInsertInto &&
        !op2.payload_ref.has_value()) {
      bool merged = false;
      for (AtomicOp& op1 : out) {
        if (op1.kind == AtomicOp::Kind::kInsertInto &&
            !op1.payload_ref.has_value() && op1.target == op2.target) {
          MergePayloadInto(op2, &op1);
          if (stats != nullptr) ++stats->a1_merged;
          merged = true;
          break;
        }
      }
      if (merged) continue;
    }
    out.push_back(op2);
  }
  return out;
}

ApplyResult ApplyAtomicOps(Document* doc, const OpSequence& ops,
                           StoreIndex* store) {
  ApplyResult result;
  // Roots inserted per op, for payload-ref resolution of unoptimized runs.
  std::vector<std::vector<NodeHandle>> roots_by_op(ops.size());

  for (size_t i = 0; i < ops.size(); ++i) {
    const AtomicOp& op = ops[i];
    NodeHandle target = kNullNode;
    if (op.payload_ref.has_value()) {
      const PayloadRef& ref = *op.payload_ref;
      if (ref.producer_op >= 0 &&
          static_cast<size_t>(ref.producer_op) < roots_by_op.size()) {
        const auto& roots = roots_by_op[static_cast<size_t>(ref.producer_op)];
        if (static_cast<size_t>(ref.tree_index) < roots.size()) {
          NodeHandle cur = roots[static_cast<size_t>(ref.tree_index)];
          for (int step : ref.child_steps) {
            NodeHandle c = doc->node(cur).first_child;
            for (int k = 0; k < step && c != kNullNode; ++k) {
              c = doc->node(c).next_sibling;
            }
            cur = c;
            if (cur == kNullNode) break;
          }
          target = cur;
        }
      }
    } else {
      target = doc->FindById(op.target);
    }
    if (target == kNullNode || !doc->IsAlive(target)) continue;

    if (op.kind == AtomicOp::Kind::kDelete) {
      result.delete_root_ids.push_back(doc->node(target).id);
      std::vector<NodeHandle> removed = doc->DeleteSubtree(target);
      if (store != nullptr) store->OnNodesRemoved(removed);
      result.deleted_nodes.insert(result.deleted_nodes.end(), removed.begin(),
                                  removed.end());
    } else {
      result.insert_target_ids.push_back(doc->node(target).id);
      const Document& p = *op.payload;
      for (NodeHandle t = p.node(p.root()).first_child; t != kNullNode;
           t = p.node(t).next_sibling) {
        NodeHandle copy = doc->CopySubtreeAsChild(target, p, t);
        roots_by_op[i].push_back(copy);
        result.inserted_roots.push_back(copy);
        std::vector<NodeHandle> added = doc->SubtreeNodes(copy);
        if (store != nullptr) store->OnNodesAdded(added);
        result.inserted_nodes.insert(result.inserted_nodes.end(),
                                     added.begin(), added.end());
      }
    }
  }
  std::sort(result.insert_target_ids.begin(), result.insert_target_ids.end());
  result.insert_target_ids.erase(
      std::unique(result.insert_target_ids.begin(),
                  result.insert_target_ids.end()),
      result.insert_target_ids.end());
  if (store != nullptr) InvalidateStoreValCont(store, result);
  return result;
}

}  // namespace xvm
