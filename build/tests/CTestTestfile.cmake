# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/costmodel_test[1]_include.cmake")
include("/root/repo/build/tests/deferred_test[1]_include.cmake")
include("/root/repo/build/tests/dewey_test[1]_include.cmake")
include("/root/repo/build/tests/dtd_test[1]_include.cmake")
include("/root/repo/build/tests/from_xpath_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/iterator_test[1]_include.cmake")
include("/root/repo/build/tests/ivma_test[1]_include.cmake")
include("/root/repo/build/tests/maintain_test[1]_include.cmake")
include("/root/repo/build/tests/manager_test[1]_include.cmake")
include("/root/repo/build/tests/ordkey_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_test[1]_include.cmake")
include("/root/repo/build/tests/persist_test[1]_include.cmake")
include("/root/repo/build/tests/pul_test[1]_include.cmake")
include("/root/repo/build/tests/terms_test[1]_include.cmake")
include("/root/repo/build/tests/twig_test[1]_include.cmake")
include("/root/repo/build/tests/update_test[1]_include.cmake")
include("/root/repo/build/tests/view_store_test[1]_include.cmake")
include("/root/repo/build/tests/xmark_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/xpath_test[1]_include.cmake")
