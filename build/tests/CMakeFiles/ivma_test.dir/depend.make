# Empty dependencies file for ivma_test.
# This may be replaced when dependencies are built.
