file(REMOVE_RECURSE
  "CMakeFiles/ivma_test.dir/ivma_test.cc.o"
  "CMakeFiles/ivma_test.dir/ivma_test.cc.o.d"
  "ivma_test"
  "ivma_test.pdb"
  "ivma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
