# Empty compiler generated dependencies file for maintain_test.
# This may be replaced when dependencies are built.
