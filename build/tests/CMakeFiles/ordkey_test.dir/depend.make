# Empty dependencies file for ordkey_test.
# This may be replaced when dependencies are built.
