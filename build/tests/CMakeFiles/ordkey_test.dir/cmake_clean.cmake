file(REMOVE_RECURSE
  "CMakeFiles/ordkey_test.dir/ordkey_test.cc.o"
  "CMakeFiles/ordkey_test.dir/ordkey_test.cc.o.d"
  "ordkey_test"
  "ordkey_test.pdb"
  "ordkey_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordkey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
