file(REMOVE_RECURSE
  "CMakeFiles/terms_test.dir/terms_test.cc.o"
  "CMakeFiles/terms_test.dir/terms_test.cc.o.d"
  "terms_test"
  "terms_test.pdb"
  "terms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
