file(REMOVE_RECURSE
  "CMakeFiles/pul_test.dir/pul_test.cc.o"
  "CMakeFiles/pul_test.dir/pul_test.cc.o.d"
  "pul_test"
  "pul_test.pdb"
  "pul_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
