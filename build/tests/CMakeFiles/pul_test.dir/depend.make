# Empty dependencies file for pul_test.
# This may be replaced when dependencies are built.
