file(REMOVE_RECURSE
  "CMakeFiles/view_store_test.dir/view_store_test.cc.o"
  "CMakeFiles/view_store_test.dir/view_store_test.cc.o.d"
  "view_store_test"
  "view_store_test.pdb"
  "view_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
