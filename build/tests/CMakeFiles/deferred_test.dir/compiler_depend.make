# Empty compiler generated dependencies file for deferred_test.
# This may be replaced when dependencies are built.
