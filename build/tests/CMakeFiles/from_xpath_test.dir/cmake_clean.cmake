file(REMOVE_RECURSE
  "CMakeFiles/from_xpath_test.dir/from_xpath_test.cc.o"
  "CMakeFiles/from_xpath_test.dir/from_xpath_test.cc.o.d"
  "from_xpath_test"
  "from_xpath_test.pdb"
  "from_xpath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/from_xpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
