# Empty dependencies file for from_xpath_test.
# This may be replaced when dependencies are built.
