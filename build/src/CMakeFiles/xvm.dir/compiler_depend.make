# Empty compiler generated dependencies file for xvm.
# This may be replaced when dependencies are built.
