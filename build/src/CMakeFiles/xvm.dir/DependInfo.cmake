
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/expr.cc" "src/CMakeFiles/xvm.dir/algebra/expr.cc.o" "gcc" "src/CMakeFiles/xvm.dir/algebra/expr.cc.o.d"
  "/root/repo/src/algebra/iterator.cc" "src/CMakeFiles/xvm.dir/algebra/iterator.cc.o" "gcc" "src/CMakeFiles/xvm.dir/algebra/iterator.cc.o.d"
  "/root/repo/src/algebra/operators.cc" "src/CMakeFiles/xvm.dir/algebra/operators.cc.o" "gcc" "src/CMakeFiles/xvm.dir/algebra/operators.cc.o.d"
  "/root/repo/src/algebra/value.cc" "src/CMakeFiles/xvm.dir/algebra/value.cc.o" "gcc" "src/CMakeFiles/xvm.dir/algebra/value.cc.o.d"
  "/root/repo/src/baseline/ivma.cc" "src/CMakeFiles/xvm.dir/baseline/ivma.cc.o" "gcc" "src/CMakeFiles/xvm.dir/baseline/ivma.cc.o.d"
  "/root/repo/src/baseline/recompute.cc" "src/CMakeFiles/xvm.dir/baseline/recompute.cc.o" "gcc" "src/CMakeFiles/xvm.dir/baseline/recompute.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/xvm.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/xvm.dir/common/strings.cc.o.d"
  "/root/repo/src/common/varint.cc" "src/CMakeFiles/xvm.dir/common/varint.cc.o" "gcc" "src/CMakeFiles/xvm.dir/common/varint.cc.o.d"
  "/root/repo/src/ids/dewey.cc" "src/CMakeFiles/xvm.dir/ids/dewey.cc.o" "gcc" "src/CMakeFiles/xvm.dir/ids/dewey.cc.o.d"
  "/root/repo/src/ids/ordkey.cc" "src/CMakeFiles/xvm.dir/ids/ordkey.cc.o" "gcc" "src/CMakeFiles/xvm.dir/ids/ordkey.cc.o.d"
  "/root/repo/src/pattern/compile.cc" "src/CMakeFiles/xvm.dir/pattern/compile.cc.o" "gcc" "src/CMakeFiles/xvm.dir/pattern/compile.cc.o.d"
  "/root/repo/src/pattern/from_xpath.cc" "src/CMakeFiles/xvm.dir/pattern/from_xpath.cc.o" "gcc" "src/CMakeFiles/xvm.dir/pattern/from_xpath.cc.o.d"
  "/root/repo/src/pattern/tree_pattern.cc" "src/CMakeFiles/xvm.dir/pattern/tree_pattern.cc.o" "gcc" "src/CMakeFiles/xvm.dir/pattern/tree_pattern.cc.o.d"
  "/root/repo/src/pattern/twig.cc" "src/CMakeFiles/xvm.dir/pattern/twig.cc.o" "gcc" "src/CMakeFiles/xvm.dir/pattern/twig.cc.o.d"
  "/root/repo/src/pul/pul.cc" "src/CMakeFiles/xvm.dir/pul/pul.cc.o" "gcc" "src/CMakeFiles/xvm.dir/pul/pul.cc.o.d"
  "/root/repo/src/schema/delta_constraints.cc" "src/CMakeFiles/xvm.dir/schema/delta_constraints.cc.o" "gcc" "src/CMakeFiles/xvm.dir/schema/delta_constraints.cc.o.d"
  "/root/repo/src/schema/dtd.cc" "src/CMakeFiles/xvm.dir/schema/dtd.cc.o" "gcc" "src/CMakeFiles/xvm.dir/schema/dtd.cc.o.d"
  "/root/repo/src/store/canonical.cc" "src/CMakeFiles/xvm.dir/store/canonical.cc.o" "gcc" "src/CMakeFiles/xvm.dir/store/canonical.cc.o.d"
  "/root/repo/src/store/label_dict.cc" "src/CMakeFiles/xvm.dir/store/label_dict.cc.o" "gcc" "src/CMakeFiles/xvm.dir/store/label_dict.cc.o.d"
  "/root/repo/src/update/delta.cc" "src/CMakeFiles/xvm.dir/update/delta.cc.o" "gcc" "src/CMakeFiles/xvm.dir/update/delta.cc.o.d"
  "/root/repo/src/update/update.cc" "src/CMakeFiles/xvm.dir/update/update.cc.o" "gcc" "src/CMakeFiles/xvm.dir/update/update.cc.o.d"
  "/root/repo/src/view/costmodel.cc" "src/CMakeFiles/xvm.dir/view/costmodel.cc.o" "gcc" "src/CMakeFiles/xvm.dir/view/costmodel.cc.o.d"
  "/root/repo/src/view/deferred.cc" "src/CMakeFiles/xvm.dir/view/deferred.cc.o" "gcc" "src/CMakeFiles/xvm.dir/view/deferred.cc.o.d"
  "/root/repo/src/view/lattice.cc" "src/CMakeFiles/xvm.dir/view/lattice.cc.o" "gcc" "src/CMakeFiles/xvm.dir/view/lattice.cc.o.d"
  "/root/repo/src/view/maintain.cc" "src/CMakeFiles/xvm.dir/view/maintain.cc.o" "gcc" "src/CMakeFiles/xvm.dir/view/maintain.cc.o.d"
  "/root/repo/src/view/manager.cc" "src/CMakeFiles/xvm.dir/view/manager.cc.o" "gcc" "src/CMakeFiles/xvm.dir/view/manager.cc.o.d"
  "/root/repo/src/view/persist.cc" "src/CMakeFiles/xvm.dir/view/persist.cc.o" "gcc" "src/CMakeFiles/xvm.dir/view/persist.cc.o.d"
  "/root/repo/src/view/schema_guard.cc" "src/CMakeFiles/xvm.dir/view/schema_guard.cc.o" "gcc" "src/CMakeFiles/xvm.dir/view/schema_guard.cc.o.d"
  "/root/repo/src/view/terms.cc" "src/CMakeFiles/xvm.dir/view/terms.cc.o" "gcc" "src/CMakeFiles/xvm.dir/view/terms.cc.o.d"
  "/root/repo/src/view/view_def.cc" "src/CMakeFiles/xvm.dir/view/view_def.cc.o" "gcc" "src/CMakeFiles/xvm.dir/view/view_def.cc.o.d"
  "/root/repo/src/view/view_store.cc" "src/CMakeFiles/xvm.dir/view/view_store.cc.o" "gcc" "src/CMakeFiles/xvm.dir/view/view_store.cc.o.d"
  "/root/repo/src/xmark/generator.cc" "src/CMakeFiles/xvm.dir/xmark/generator.cc.o" "gcc" "src/CMakeFiles/xvm.dir/xmark/generator.cc.o.d"
  "/root/repo/src/xmark/updates.cc" "src/CMakeFiles/xvm.dir/xmark/updates.cc.o" "gcc" "src/CMakeFiles/xvm.dir/xmark/updates.cc.o.d"
  "/root/repo/src/xmark/views.cc" "src/CMakeFiles/xvm.dir/xmark/views.cc.o" "gcc" "src/CMakeFiles/xvm.dir/xmark/views.cc.o.d"
  "/root/repo/src/xml/document.cc" "src/CMakeFiles/xvm.dir/xml/document.cc.o" "gcc" "src/CMakeFiles/xvm.dir/xml/document.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/xvm.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/xvm.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/xvm.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/xvm.dir/xml/serializer.cc.o.d"
  "/root/repo/src/xpath/xpath_ast.cc" "src/CMakeFiles/xvm.dir/xpath/xpath_ast.cc.o" "gcc" "src/CMakeFiles/xvm.dir/xpath/xpath_ast.cc.o.d"
  "/root/repo/src/xpath/xpath_eval.cc" "src/CMakeFiles/xvm.dir/xpath/xpath_eval.cc.o" "gcc" "src/CMakeFiles/xvm.dir/xpath/xpath_eval.cc.o.d"
  "/root/repo/src/xpath/xpath_parser.cc" "src/CMakeFiles/xvm.dir/xpath/xpath_parser.cc.o" "gcc" "src/CMakeFiles/xvm.dir/xpath/xpath_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
