file(REMOVE_RECURSE
  "libxvm.a"
)
