# Empty compiler generated dependencies file for example_publications.
# This may be replaced when dependencies are built.
