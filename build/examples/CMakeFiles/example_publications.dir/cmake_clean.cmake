file(REMOVE_RECURSE
  "CMakeFiles/example_publications.dir/publications.cpp.o"
  "CMakeFiles/example_publications.dir/publications.cpp.o.d"
  "example_publications"
  "example_publications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_publications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
