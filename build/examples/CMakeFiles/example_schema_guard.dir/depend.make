# Empty dependencies file for example_schema_guard.
# This may be replaced when dependencies are built.
