file(REMOVE_RECURSE
  "CMakeFiles/example_schema_guard.dir/schema_guard.cpp.o"
  "CMakeFiles/example_schema_guard.dir/schema_guard.cpp.o.d"
  "example_schema_guard"
  "example_schema_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_schema_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
