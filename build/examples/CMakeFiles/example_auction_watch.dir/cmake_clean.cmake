file(REMOVE_RECURSE
  "CMakeFiles/example_auction_watch.dir/auction_watch.cpp.o"
  "CMakeFiles/example_auction_watch.dir/auction_watch.cpp.o.d"
  "example_auction_watch"
  "example_auction_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_auction_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
