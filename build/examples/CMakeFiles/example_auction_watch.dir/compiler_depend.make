# Empty compiler generated dependencies file for example_auction_watch.
# This may be replaced when dependencies are built.
