file(REMOVE_RECURSE
  "CMakeFiles/example_update_sequences.dir/update_sequences.cpp.o"
  "CMakeFiles/example_update_sequences.dir/update_sequences.cpp.o.d"
  "example_update_sequences"
  "example_update_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_update_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
