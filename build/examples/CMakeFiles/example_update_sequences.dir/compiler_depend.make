# Empty compiler generated dependencies file for example_update_sequences.
# This may be replaced when dependencies are built.
