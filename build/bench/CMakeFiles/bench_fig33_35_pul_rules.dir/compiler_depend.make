# Empty compiler generated dependencies file for bench_fig33_35_pul_rules.
# This may be replaced when dependencies are built.
