file(REMOVE_RECURSE
  "CMakeFiles/bench_fig33_35_pul_rules.dir/bench_fig33_35_pul_rules.cc.o"
  "CMakeFiles/bench_fig33_35_pul_rules.dir/bench_fig33_35_pul_rules.cc.o.d"
  "CMakeFiles/bench_fig33_35_pul_rules.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig33_35_pul_rules.dir/bench_util.cc.o.d"
  "bench_fig33_35_pul_rules"
  "bench_fig33_35_pul_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig33_35_pul_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
