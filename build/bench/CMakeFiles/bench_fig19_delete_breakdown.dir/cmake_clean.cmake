file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_delete_breakdown.dir/bench_fig19_delete_breakdown.cc.o"
  "CMakeFiles/bench_fig19_delete_breakdown.dir/bench_fig19_delete_breakdown.cc.o.d"
  "CMakeFiles/bench_fig19_delete_breakdown.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig19_delete_breakdown.dir/bench_util.cc.o.d"
  "bench_fig19_delete_breakdown"
  "bench_fig19_delete_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_delete_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
