file(REMOVE_RECURSE
  "CMakeFiles/bench_fig26_27_vs_recompute.dir/bench_fig26_27_vs_recompute.cc.o"
  "CMakeFiles/bench_fig26_27_vs_recompute.dir/bench_fig26_27_vs_recompute.cc.o.d"
  "CMakeFiles/bench_fig26_27_vs_recompute.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig26_27_vs_recompute.dir/bench_util.cc.o.d"
  "bench_fig26_27_vs_recompute"
  "bench_fig26_27_vs_recompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig26_27_vs_recompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
