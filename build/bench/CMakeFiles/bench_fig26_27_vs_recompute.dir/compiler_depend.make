# Empty compiler generated dependencies file for bench_fig26_27_vs_recompute.
# This may be replaced when dependencies are built.
