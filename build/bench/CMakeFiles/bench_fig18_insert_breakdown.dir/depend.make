# Empty dependencies file for bench_fig18_insert_breakdown.
# This may be replaced when dependencies are built.
