file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_scalability.dir/bench_fig25_scalability.cc.o"
  "CMakeFiles/bench_fig25_scalability.dir/bench_fig25_scalability.cc.o.d"
  "CMakeFiles/bench_fig25_scalability.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig25_scalability.dir/bench_util.cc.o.d"
  "bench_fig25_scalability"
  "bench_fig25_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
