# Empty compiler generated dependencies file for bench_fig24_annotations.
# This may be replaced when dependencies are built.
