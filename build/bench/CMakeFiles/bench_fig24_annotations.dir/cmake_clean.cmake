file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_annotations.dir/bench_fig24_annotations.cc.o"
  "CMakeFiles/bench_fig24_annotations.dir/bench_fig24_annotations.cc.o.d"
  "CMakeFiles/bench_fig24_annotations.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig24_annotations.dir/bench_util.cc.o.d"
  "bench_fig24_annotations"
  "bench_fig24_annotations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_annotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
