# Empty dependencies file for bench_fig20_insert_all_views.
# This may be replaced when dependencies are built.
