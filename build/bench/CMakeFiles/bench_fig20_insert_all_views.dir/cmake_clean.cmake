file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_insert_all_views.dir/bench_fig20_insert_all_views.cc.o"
  "CMakeFiles/bench_fig20_insert_all_views.dir/bench_fig20_insert_all_views.cc.o.d"
  "CMakeFiles/bench_fig20_insert_all_views.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig20_insert_all_views.dir/bench_util.cc.o.d"
  "bench_fig20_insert_all_views"
  "bench_fig20_insert_all_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_insert_all_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
