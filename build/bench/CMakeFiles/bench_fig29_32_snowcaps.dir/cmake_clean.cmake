file(REMOVE_RECURSE
  "CMakeFiles/bench_fig29_32_snowcaps.dir/bench_fig29_32_snowcaps.cc.o"
  "CMakeFiles/bench_fig29_32_snowcaps.dir/bench_fig29_32_snowcaps.cc.o.d"
  "CMakeFiles/bench_fig29_32_snowcaps.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig29_32_snowcaps.dir/bench_util.cc.o.d"
  "bench_fig29_32_snowcaps"
  "bench_fig29_32_snowcaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig29_32_snowcaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
