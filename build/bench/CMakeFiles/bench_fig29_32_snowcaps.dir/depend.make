# Empty dependencies file for bench_fig29_32_snowcaps.
# This may be replaced when dependencies are built.
