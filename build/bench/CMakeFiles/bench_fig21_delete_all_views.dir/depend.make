# Empty dependencies file for bench_fig21_delete_all_views.
# This may be replaced when dependencies are built.
