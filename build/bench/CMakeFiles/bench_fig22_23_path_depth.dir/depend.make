# Empty dependencies file for bench_fig22_23_path_depth.
# This may be replaced when dependencies are built.
