file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_23_path_depth.dir/bench_fig22_23_path_depth.cc.o"
  "CMakeFiles/bench_fig22_23_path_depth.dir/bench_fig22_23_path_depth.cc.o.d"
  "CMakeFiles/bench_fig22_23_path_depth.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig22_23_path_depth.dir/bench_util.cc.o.d"
  "bench_fig22_23_path_depth"
  "bench_fig22_23_path_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_23_path_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
