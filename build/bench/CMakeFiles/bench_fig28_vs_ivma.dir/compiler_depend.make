# Empty compiler generated dependencies file for bench_fig28_vs_ivma.
# This may be replaced when dependencies are built.
