file(REMOVE_RECURSE
  "CMakeFiles/bench_fig28_vs_ivma.dir/bench_fig28_vs_ivma.cc.o"
  "CMakeFiles/bench_fig28_vs_ivma.dir/bench_fig28_vs_ivma.cc.o.d"
  "CMakeFiles/bench_fig28_vs_ivma.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig28_vs_ivma.dir/bench_util.cc.o.d"
  "bench_fig28_vs_ivma"
  "bench_fig28_vs_ivma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig28_vs_ivma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
