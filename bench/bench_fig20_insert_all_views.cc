// Figure 20: total PINT running time for all 35 XMark (view, update) pairs
// on a (scaled) 10 MB document — run as the paper's multi-view context: all
// seven views registered on one ViewManager, each update located / applied /
// Δ-extracted once and propagated to every view. Per-pair rows split the
// statement-shared work (find targets, delta tables) from the per-view
// propagation; a serial vs parallel wall-clock comparison and a metrics JSON
// dump close the figure. XVM_WORKERS overrides the parallel lane count.

#include <algorithm>
#include <map>
#include <vector>

#include "bench_util.h"

namespace xvm::bench {
namespace {

void Run() {
  PrintBanner("Figure 20",
              "View insert performance, all views maintained together "
              "(35 pairs, 10 MB doc)");
  const size_t bytes = ScaledBytes(10 * 1024);
  const size_t workers = Workers();
  std::printf("workers=%zu (override with XVM_WORKERS)\n\n", workers);

  // Distinct updates, in pair order; the manager propagates each to all
  // seven views at once instead of 35 independent single-view runs.
  std::vector<std::string> unames;
  for (const auto& [view, uname] : XMarkViewUpdatePairs()) {
    if (std::find(unames.begin(), unames.end(), uname) == unames.end()) {
      unames.push_back(uname);
    }
  }
  const std::vector<std::string> view_names = XMarkViewNames();
  MetricsRegistry metrics;
  std::map<std::string, MultiUpdateOutcome> by_update;
  double serial_wall = 0.0;
  double parallel_wall = 0.0;
  for (const std::string& uname : unames) {
    auto u = FindXMarkUpdate(uname);
    XVM_CHECK(u.ok());
    UpdateStmt stmt = MakeInsertStmt(*u);
    MultiUpdateOutcome serial = AveragedMulti(
        Reps(), [&] { return RunManagerAll(bytes, stmt, 1); });
    MultiUpdateOutcome parallel = AveragedMulti(
        Reps(), [&] { return RunManagerAll(bytes, stmt, workers, 7,
                                           &metrics); });
    serial_wall += serial.propagate_wall_ms;
    parallel_wall += parallel.propagate_wall_ms;
    by_update.emplace(uname, std::move(serial));
  }

  std::printf("%-16s %12s %12s %12s\n", "pair", "shared_ms", "view_ms",
              "total_ms");
  for (const auto& [view, uname] : XMarkViewUpdatePairs()) {
    const MultiUpdateOutcome& out = by_update.at(uname);
    size_t vi = static_cast<size_t>(
        std::find(view_names.begin(), view_names.end(), view) -
        view_names.begin());
    XVM_CHECK(vi < out.per_view.size());
    std::printf("%-16s %12.3f %12.3f %12.3f\n",
                (view + "_" + uname).c_str(), out.shared_timing.TotalMs(),
                out.per_view[vi].timing.TotalMs(), out.TotalMsFor(vi));
  }

  std::printf("\n%-40s %12.3f ms\n", "propagation wall time, serial (1)",
              serial_wall);
  std::printf("%-40s %12.3f ms\n",
              ("propagation wall time, parallel (" +
               std::to_string(workers) + ")").c_str(),
              parallel_wall);
  DumpMetricsJson(metrics);
}

}  // namespace
}  // namespace xvm::bench

int main() {
  xvm::bench::Run();
  return 0;
}
