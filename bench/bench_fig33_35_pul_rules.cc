// Figures 33-35: benefit of the §5 PUL reduction rules O1, O3 and I5 when
// propagating sequences of atomic updates to view Q1 over a 100 KB document.
// Following §6.8, the base update X1_L runs alongside a second update whose
// targets overlap a varying percentage (20%..100%) of X1_L's targets; the
// overlapping ops are redundant and the rules remove them. Both arms
// propagate through the same ApplyOpsAndPropagate pipeline; the "optimise"
// arm pays for ReduceOps and saves on redundant propagation work.

#include "bench_util.h"

#include "pul/pul.h"
#include "xpath/xpath_eval.h"

namespace xvm::bench {
namespace {

enum class Rule { kO1, kO3, kI5 };

constexpr const char kNameForest[] =
    "<name>Martin<name>and</name><name>some</name><name>test</name>"
    "<name>nodes</name></name>";

/// Builds the combined op sequence for one rule at `percent` overlap.
OpSequence BuildOps(const Document& doc, Rule rule, int percent) {
  auto persons = EvalXPathString(doc, "/site/people/person");
  XVM_CHECK(persons.ok() && !persons->empty());
  const size_t n = persons->size();
  const size_t overlap = std::max<size_t>(1, n * percent / 100);

  OpSequence ops;
  auto make_forest = [&doc]() {
    // Build the name forest via the update helper for consistent payloads.
    UpdateStmt stmt = UpdateStmt::InsertForest("/x", kNameForest);
    auto f = std::make_shared<Document>(doc.dict_ptr());
    NodeHandle root = f->CreateRoot("#forest");
    f->CopySubtreeAsChild(root, *stmt.forest,
                          stmt.forest->Children(stmt.forest->root())[0]);
    return f;
  };

  switch (rule) {
    case Rule::kO1: {
      // The overlapping update deletes the first `overlap` persons; X1_L
      // then deletes every person. Without optimization both rounds of
      // propagation run; O1 keeps only the later deletes.
      for (size_t i = 0; i < overlap; ++i) {
        ops.push_back(AtomicOp::Del(doc.node((*persons)[i]).id));
      }
      for (NodeHandle p : *persons) ops.push_back(AtomicOp::Del(doc.node(p).id));
      break;
    }
    case Rule::kO3: {
      // B first: delete the <name> child of the first `overlap` persons,
      // then A deletes the persons themselves (ancestors) — O3 drops B.
      auto expr = ParseXPath("/name");
      XVM_CHECK(expr.ok());
      for (size_t i = 0; i < overlap; ++i) {
        auto kids = EvalXPathFrom(doc, (*persons)[i], expr->steps);
        if (!kids.empty()) ops.push_back(AtomicOp::Del(doc.node(kids[0]).id));
      }
      for (NodeHandle p : *persons) ops.push_back(AtomicOp::Del(doc.node(p).id));
      break;
    }
    case Rule::kI5: {
      // The overlapping update inserts into the first `overlap` persons;
      // X1_L then inserts into every person. I5 merges the same-target
      // inserts into single ops, halving the propagation rounds for the
      // overlapped targets.
      for (size_t i = 0; i < overlap; ++i) {
        ops.push_back(
            AtomicOp::InsInto(doc.node((*persons)[i]).id, make_forest()));
      }
      for (NodeHandle p : *persons) {
        ops.push_back(AtomicOp::InsInto(doc.node(p).id, make_forest()));
      }
      break;
    }
  }
  return ops;
}

/// Runs one op sequence node-at-a-time (§6.8: "as these rules are defined
/// on atomic operations, we modified our system to operate in this
/// manner"). Deletions follow XQuery Update snapshot semantics: every op's
/// Δ− is extracted against the sequence's initial snapshot, so a redundant
/// delete still pays its full propagation round — exactly the work O1/O3
/// remove. Returns the elapsed milliseconds.
double RunSequence(Workbench* wb, MaintainedView* mv, const OpSequence& ops) {
  Document* doc = wb->doc.get();
  StoreIndex* store = wb->store.get();
  // Snapshot Δ− tables, one per delete op.
  std::set<LabelId> needs = mv->DeltaMinusValLabelIds();
  std::vector<DeltaTables> snapshot_dm;
  snapshot_dm.reserve(ops.size());
  for (const AtomicOp& op : ops) {
    Pul pul;
    if (op.kind == AtomicOp::Kind::kDelete) {
      NodeHandle h = doc->FindById(op.target);
      if (h != kNullNode) pul.deletes.push_back(PulDeleteOp{h});
    }
    snapshot_dm.push_back(ComputeDeltaMinus(*doc, pul, nullptr, &needs));
  }

  WallTimer timer;
  for (size_t i = 0; i < ops.size(); ++i) {
    const AtomicOp& op = ops[i];
    if (op.kind == AtomicOp::Kind::kDelete) {
      PhaseTimer phase_timer;
      MaintenanceStats stats;
      NodeHandle h = doc->FindById(op.target);
      std::vector<NodeHandle> removed_nodes;
      if (h != kNullNode) removed_nodes = doc->DeleteSubtree(h);
      mv->PropagateDelete(snapshot_dm[i], &phase_timer, &stats);
      store->OnNodesRemoved(removed_nodes);
      if (stats.recompute_fallback) mv->RecomputeFromStore();
    } else {
      auto out = mv->ApplyOpsAndPropagate(doc, OpSequence{op});
      XVM_CHECK(out.ok());
    }
  }
  return timer.ElapsedMs();
}

void RunRule(const std::string& figure, Rule rule, const char* rule_name) {
  PrintBanner(figure, std::string("Reduction rule ") + rule_name +
                          " (view Q1, 100 KB doc)");
  // Fixed at the paper's 100 KB regardless of XVM_SCALE (the bench is
  // cheap, and per-round costs need a non-toy document to be visible).
  const size_t bytes = 100 * 1024;
  std::printf("%-10s %14s %14s %12s\n", "overlap", "optimise_ms",
              "no_optimise_ms", "ops_removed");
  for (int percent : {20, 40, 60, 80, 100}) {
    double opt_ms = 0, raw_ms = 0;
    size_t removed = 0;
    for (int rep = 0; rep < Reps(); ++rep) {
      for (bool optimize : {true, false}) {
        Workbench wb = MakeXMark(bytes, 7);
        auto def = XMarkView("Q1");
        XVM_CHECK(def.ok());
        MaintainedView mv(std::move(def).value(), wb.store.get(),
                          LatticeStrategy::kSnowcaps);
        mv.Initialize();
        OpSequence ops = BuildOps(*wb.doc, rule, percent);
        WallTimer timer;
        if (optimize) {
          ReduceStats stats;
          ops = ReduceOps(ops, &stats);
          removed = stats.TotalRemoved();
        }
        RunSequence(&wb, &mv, ops);
        (optimize ? opt_ms : raw_ms) += timer.ElapsedMs();
      }
    }
    std::printf("%9d%% %14.3f %14.3f %12zu\n", percent, opt_ms / Reps(),
                raw_ms / Reps(), removed);
  }
}

}  // namespace
}  // namespace xvm::bench

int main() {
  xvm::bench::RunRule("Figure 33", xvm::bench::Rule::kO1, "O1");
  xvm::bench::RunRule("Figure 34", xvm::bench::Rule::kO3, "O3");
  xvm::bench::RunRule("Figure 35", xvm::bench::Rule::kI5, "I5");
  return 0;
}
