// Figure 21: total PDDT running time for all 35 XMark (view, update) pairs
// on a (scaled) 10 MB document.

#include "bench_util.h"

namespace xvm::bench {
namespace {

void Run() {
  PrintBanner("Figure 21",
              "View delete performance, all views (35 pairs, 10 MB doc)");
  const size_t bytes = ScaledBytes(10 * 1024);
  std::printf("%-16s %12s\n", "pair", "total_ms");
  for (const auto& [view, uname] : XMarkViewUpdatePairs()) {
    auto u = FindXMarkUpdate(uname);
    XVM_CHECK(u.ok());
    UpdateOutcome out = Averaged(Reps(), [&] {
      return RunMaintained(view, bytes, MakeDeleteStmt(*u),
                           LatticeStrategy::kSnowcaps);
    });
    std::printf("%-16s %12.3f\n", (view + "_" + uname).c_str(),
                out.timing.TotalMs());
  }
}

}  // namespace
}  // namespace xvm::bench

int main() {
  xvm::bench::Run();
  return 0;
}
