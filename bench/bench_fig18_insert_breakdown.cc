// Figure 18: PINT/PIMT time breakdown for insert propagation to the XMark
// views Q1, Q3 and Q6 on a (scaled) 10 MB document, across the five update
// classes. Reproduces the paper's observation that Find Target Nodes
// dominates Compute Delta Tables / Get Update Expression / Execute Update,
// and that Update Lattice tracks view complexity more than update class.

#include "bench_util.h"

namespace xvm::bench {
namespace {

void Run() {
  PrintBanner("Figure 18",
              "Insert propagation breakdown (views Q1/Q3/Q6, 10 MB doc)");
  const size_t bytes = ScaledBytes(10 * 1024);
  const std::vector<std::pair<std::string, std::vector<std::string>>> plan = {
      {"Q1", {"X1_L", "A6_A", "A7_O", "A8_AO", "B7_LB"}},
      {"Q3", {"B3_LB", "X2_L", "X3_A", "X4_O", "X5_AO"}},
      {"Q6", {"B1_A", "B5_LB", "E6_L", "X7_O", "X8_AO"}},
  };
  for (const auto& [view, updates] : plan) {
    std::printf("--- view %s ---\n", view.c_str());
    PrintPhaseHeader();
    for (const auto& uname : updates) {
      auto u = FindXMarkUpdate(uname);
      XVM_CHECK(u.ok());
      UpdateOutcome out = Averaged(Reps(), [&] {
        return RunMaintained(view, bytes, MakeInsertStmt(*u),
                             LatticeStrategy::kSnowcaps);
      });
      PrintPhaseRow(view + "_" + uname, out.timing);
    }
  }
}

}  // namespace
}  // namespace xvm::bench

int main() {
  xvm::bench::Run();
  return 0;
}
