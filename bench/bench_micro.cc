// Micro-benchmarks (google-benchmark) for the performance-critical
// substrates: dynamic order keys, structural ID operations, the stack-based
// structural join, tree-pattern evaluation and delta extraction. These are
// not paper figures; they guard the constants behind them.

#include <benchmark/benchmark.h>

#include "algebra/operators.h"
#include "common/rng.h"
#include "pattern/compile.h"
#include "update/delta.h"
#include "xmark/generator.h"
#include "xmark/views.h"

namespace xvm {
namespace {

void BM_OrdKeyAfterChain(benchmark::State& state) {
  for (auto _ : state) {
    OrdKey k = OrdKey::First();
    for (int i = 0; i < 100; ++i) k = OrdKey::After(k);
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(BM_OrdKeyAfterChain);

void BM_OrdKeyBetweenPathological(benchmark::State& state) {
  for (auto _ : state) {
    OrdKey lo = OrdKey::First();
    OrdKey hi = OrdKey::After(lo);
    for (int i = 0; i < 50; ++i) hi = OrdKey::Between(lo, hi);
    benchmark::DoNotOptimize(hi);
  }
}
BENCHMARK(BM_OrdKeyBetweenPathological);

void BM_DeweyIsAncestor(benchmark::State& state) {
  std::vector<DeweyStep> steps;
  for (int i = 0; i < 12; ++i) steps.push_back({LabelId(i), OrdKey({i})});
  DeweyId deep{std::vector<DeweyStep>(steps)};
  DeweyId anc = deep.AncestorAtDepth(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(anc.IsAncestorOf(deep));
  }
}
BENCHMARK(BM_DeweyIsAncestor);

void BM_DeweyEncodeDecode(benchmark::State& state) {
  std::vector<DeweyStep> steps;
  for (int i = 0; i < 8; ++i) steps.push_back({LabelId(i * 7), OrdKey({i})});
  DeweyId id{std::move(steps)};
  for (auto _ : state) {
    std::string enc = id.Encode();
    DeweyId back;
    DeweyId::Decode(enc, &back);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_DeweyEncodeDecode);

/// Random two-level relation pair for structural-join scaling.
void BM_StructuralJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  Relation outer, inner;
  outer.schema.Add({"a.ID", ValueKind::kId});
  inner.schema.Add({"b.ID", ValueKind::kId});
  DeweyId root = DeweyId::Root(0);
  OrdKey ord = OrdKey::First();
  for (int i = 0; i < n; ++i) {
    DeweyId a = root.Child(1, ord);
    outer.rows.push_back({Value(a)});
    OrdKey inner_ord = OrdKey::First();
    for (int j = 0; j < 4; ++j) {
      inner.rows.push_back({Value(a.Child(2, inner_ord))});
      inner_ord = OrdKey::After(inner_ord);
    }
    ord = OrdKey::After(ord);
  }
  for (auto _ : state) {
    Relation out = StructuralJoin(outer, 0, inner, 0, Axis::kDescendant);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * (n + 4 * n));
}
BENCHMARK(BM_StructuralJoin)->Arg(100)->Arg(1000)->Arg(10000);

void BM_PatternEvalQ1(benchmark::State& state) {
  Document doc;
  GenerateXMark(XMarkConfig{static_cast<size_t>(state.range(0)) * 1024, 7},
                &doc);
  StoreIndex store(&doc);
  store.Build();
  auto def = XMarkView("Q1");
  const TreePattern& pat = def->pattern();
  for (auto _ : state) {
    auto result = EvalViewWithCounts(pat, StoreLeafSource(&store, &pat));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PatternEvalQ1)->Arg(100)->Arg(1000);

void BM_DeltaPlusExtraction(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Document doc;
    GenerateXMark(XMarkConfig{64 * 1024, 7}, &doc);
    UpdateStmt u = UpdateStmt::InsertForest(
        "/site/people/person", "<name>n<name>x</name><name>y</name></name>");
    auto pul = ComputePul(doc, u);
    ApplyResult applied = ApplyPul(&doc, *pul, nullptr);
    state.ResumeTiming();
    DeltaTables delta = ComputeDeltaPlus(doc, applied);
    benchmark::DoNotOptimize(delta);
  }
}
BENCHMARK(BM_DeltaPlusExtraction);

void BM_XMarkGeneration(benchmark::State& state) {
  for (auto _ : state) {
    Document doc;
    GenerateXMark(XMarkConfig{static_cast<size_t>(state.range(0)) * 1024, 7},
                  &doc);
    benchmark::DoNotOptimize(doc.num_alive());
  }
}
BENCHMARK(BM_XMarkGeneration)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace xvm

BENCHMARK_MAIN();
