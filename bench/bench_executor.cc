// bench_executor: the physical plan executor vs the fused-style baseline.
//
// Three measurements over the XMark corpus:
//   1. View evaluation latency, executor vs baseline. The baseline is the
//      SAME lowered plan with the fact-driven kernel choices demoted to what
//      the old fused evaluators always did — every statically elided sort
//      back to a check-then-sort, sorted duplicate elimination back to the
//      EncodeTuple hash map — so the delta isolates exactly what kernel
//      selection buys (and proves the executor is never slower than the
//      fused pipeline it replaced).
//   2. End-to-end maintenance latency per update class through the
//      executor-driven propagation path (comparable against the phase
//      breakdowns recorded in EXPERIMENTS.md for the fused evaluators).
//   3. The "__exec__" metrics of a full multi-view coordinator statement,
//      demonstrating sorts_elided_static > 0 on the XMark corpus.

#include <chrono>

#include "algebra/analyze/build_plan.h"
#include "algebra/exec/exec.h"
#include "algebra/exec/physical.h"
#include "bench_util.h"
#include "pattern/compile.h"

namespace xvm::bench {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Demotes the fact-driven kernel choices to the old fused evaluator's
/// unconditional behavior: check-then-sort everywhere, hash grouping.
PhysicalPlan DemoteToFusedBaseline(PhysicalPlan plan) {
  for (PhysNode& node : plan.nodes) {
    if (node.kernel == PhysKernel::kSortElided) {
      node.kernel = PhysKernel::kSortAdaptive;
    } else if (node.kernel == PhysKernel::kDupElimSorted) {
      node.kernel = PhysKernel::kDupElimHash;
    }
  }
  plan.sorts_elided_static = 0;
  return plan;
}

double TimeCountedPlan(const PhysicalPlan& phys, const LeafSource& src,
                       int reps) {
  PhysExecContext ctx;
  ctx.store_leaf = src;
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    auto out = ExecutePhysicalPlanWithCounts(phys, ctx);
    XVM_CHECK(out.ok());
    double ms = MsSince(t0);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

void RunEvalComparison(size_t bytes) {
  std::printf("--- view evaluation: executor vs fused-style baseline ---\n");
  std::printf("%-8s %12s %12s %8s %8s\n", "view", "executor_ms", "baseline_ms",
              "elided", "fused");
  Workbench wb = MakeXMark(bytes);
  for (const std::string& name : XMarkViewNames()) {
    auto def = XMarkView(name);
    XVM_CHECK(def.ok());
    const TreePattern& pat = def->pattern();
    auto phys = LowerPlan(*BuildViewPlan(pat));
    XVM_CHECK(phys.ok());
    PhysicalPlan baseline = DemoteToFusedBaseline(*phys);
    LeafSource src = StoreLeafSource(wb.store.get(), &pat);
    double exec_ms = TimeCountedPlan(*phys, src, Reps());
    double base_ms = TimeCountedPlan(baseline, src, Reps());
    std::printf("%-8s %12.3f %12.3f %8d %8d\n", name.c_str(), exec_ms,
                base_ms, phys->sorts_elided_static, phys->scans_fused);
  }
}

void RunMaintenanceLatency(size_t bytes) {
  std::printf("\n--- maintenance latency through the executor ---\n");
  PrintPhaseHeader();
  const std::vector<std::pair<std::string, std::string>> plan = {
      {"Q1", "X1_L"}, {"Q3", "B3_LB"}, {"Q6", "B1_A"}};
  for (const auto& [view, uname] : plan) {
    auto u = FindXMarkUpdate(uname);
    XVM_CHECK(u.ok());
    UpdateOutcome out = Averaged(Reps(), [&, v = view] {
      return RunMaintained(v, bytes, MakeInsertStmt(*u),
                           LatticeStrategy::kSnowcaps);
    });
    PrintPhaseRow(view + "_" + uname, out.timing);
  }
}

void RunExecMetricsDump(size_t bytes) {
  std::printf("\n--- __exec__ counters, one coordinator statement ---\n");
  auto u = FindXMarkUpdate("X1_L");
  XVM_CHECK(u.ok());
  MetricsRegistry metrics;
  RunManagerAll(bytes, MakeInsertStmt(*u), Workers(), 7, &metrics);
  auto snap = metrics.Snapshot();
  auto it = snap.find(kExecMetricsView);
  XVM_CHECK(it != snap.end());
  for (const auto& [counter, value] : it->second.counters()) {
    std::printf("  %-28s %lld\n", counter.c_str(),
                static_cast<long long>(value));
  }
  // The acceptance bar: fact-driven lowering must statically elide sorts on
  // the XMark corpus, and the counter must prove it.
  XVM_CHECK(it->second.counters().at("sorts_elided_static") > 0);
}

void Run() {
  PrintBanner("bench_executor",
              "Physical executor vs fused-style baseline (XMark corpus)");
  const size_t bytes = ScaledBytes(10 * 1024);
  RunEvalComparison(bytes);
  RunMaintenanceLatency(bytes);
  RunExecMetricsDump(bytes);
}

}  // namespace
}  // namespace xvm::bench

int main() {
  xvm::bench::Run();
  return 0;
}
