// Figures 22 & 23: deletion update X1_L of varying path depth against the
// fixed view Q1, on 100 KB and 10 MB documents. The paper's shape: total
// maintenance time *decreases* as the update path lengthens — shorter paths
// delete more nodes, so more Δ− tables are non-empty and more data moves.

#include "bench_util.h"

namespace xvm::bench {
namespace {

void RunOne(const std::string& figure, size_t paper_kb) {
  PrintBanner(figure, "Deletion X1_L of varying depth vs view Q1 (" +
                          std::to_string(paper_kb) + " KB doc)");
  const size_t bytes = ScaledBytes(paper_kb);
  const std::vector<std::string> paths = {
      "/site",
      "/site/people",
      "/site/people/person",
      "/site/people/person/@id",
      "/site/people/person/name",
  };
  std::printf("%-30s %12s %12s\n", "path", "total_ms", "nodes_deleted");
  for (const auto& path : paths) {
    size_t deleted = 0;
    UpdateOutcome out = Averaged(Reps(), [&] {
      UpdateOutcome o = RunMaintained("Q1", bytes, UpdateStmt::Delete(path),
                                      LatticeStrategy::kSnowcaps);
      deleted = o.nodes_deleted;
      return o;
    });
    std::printf("%-30s %12.3f %12zu\n", path.c_str(), out.timing.TotalMs(),
                deleted);
  }
}

}  // namespace
}  // namespace xvm::bench

int main() {
  xvm::bench::RunOne("Figure 22", 100);
  xvm::bench::RunOne("Figure 23", 10 * 1024);
  return 0;
}
