// Durability micro-benchmarks (not paper figures; the paper positions the
// engine as "a good candidate to be integrated within a persistent XML
// database", and these quantify what that persistence layer costs):
//
//  A. WAL append throughput — fsynced statement logging is on the critical
//     path of every update, so its per-record latency bounds the durable
//     update rate.
//  B. Checkpoint latency — document snapshot + per-view snapshots + manifest
//     commit, as a function of document size.
//  C. Recovery latency — checkpoint load + store rebuild + WAL tail replay,
//     the crash-restart cost.

#include "bench_util.h"

#include <cstdio>

#include "common/file_io.h"
#include "common/timing.h"
#include "view/wal.h"

namespace xvm::bench {
namespace {

std::string BenchDir() {
  const std::string dir = "/tmp/xvm_bench_durability";
  XVM_CHECK(EnsureDir(dir).ok());
  return dir;
}

void Wipe(const std::string& dir) {
  auto listed = ListDir(dir);
  if (!listed.ok()) return;
  for (const std::string& name : *listed) {
    Status st = RemoveFileIfExists(dir + "/" + name);
    if (!st.ok()) std::fprintf(stderr, "wipe: %s\n", st.ToString().c_str());
  }
}

void BenchWalAppend() {
  PrintBanner("Durability A", "WAL append+fsync throughput");
  const std::string dir = BenchDir();
  Wipe(dir);
  auto u = FindXMarkUpdate("X2_L");
  XVM_CHECK(u.ok());
  const UpdateStmt stmt = MakeInsertStmt(*u);

  const int n = 200 * std::max(1, Reps());
  WriteAheadLog wal;
  XVM_CHECK(wal.OpenLog(dir + "/bench.wal").ok());
  WallTimer timer;
  for (int i = 0; i < n; ++i) {
    XVM_CHECK(wal.Append(static_cast<uint64_t>(i) + 1, stmt).ok());
  }
  const double ms = timer.ElapsedMs();
  PrintKv("append_ms_avg", ms / n);
  std::printf("%-28s %10.0f /s  (%d records, %.1f KB)\n", "append_rate",
              1000.0 * n / ms, n, wal.durable_size() / 1024.0);
  Wipe(dir);
}

void BenchCheckpointAndRecover() {
  PrintBanner("Durability B/C", "checkpoint + recovery latency vs doc size");
  std::printf("%-10s %14s %14s %14s\n", "doc_kb", "checkpoint_ms",
              "recover_ms", "replay_ms");
  for (size_t paper_kb : {256, 1024, 4096}) {
    const size_t bytes = ScaledBytes(paper_kb);
    const std::string dir = BenchDir();

    auto make = [&](bool initial) {
      struct Rig {
        std::unique_ptr<Document> doc;
        std::unique_ptr<StoreIndex> store;
        std::unique_ptr<ViewManager> mgr;
      } r;
      r.doc = std::make_unique<Document>();
      if (initial) GenerateXMark(XMarkConfig{bytes, 7}, r.doc.get());
      r.store = std::make_unique<StoreIndex>(r.doc.get());
      if (initial) r.store->Build();
      r.mgr = std::make_unique<ViewManager>(r.doc.get(), r.store.get());
      for (const char* name : {"Q1", "Q2", "Q17"}) {
        auto def = XMarkView(name);
        XVM_CHECK(def.ok());
        XVM_CHECK(
            r.mgr->AddView(std::move(def).value(), LatticeStrategy::kSnowcaps)
                .ok());
      }
      return r;
    };

    double ckpt_ms = 0, recover_ms = 0, replay_ms = 0;
    for (int rep = 0; rep < Reps(); ++rep) {
      Wipe(dir);
      auto rig = make(true);
      XVM_CHECK(rig.mgr->EnableDurability(dir).ok());

      WallTimer ckpt;
      XVM_CHECK(rig.mgr->Checkpoint(dir).ok());
      ckpt_ms += ckpt.ElapsedMs();

      // Pure checkpoint load (empty WAL).
      rig = make(false);
      WallTimer rec;
      XVM_CHECK(rig.mgr->Recover(dir).ok());
      recover_ms += rec.ElapsedMs();

      // Recovery with a WAL tail: two statements past the checkpoint.
      for (const char* uname : {"X1_L", "X2_L"}) {
        auto u = FindXMarkUpdate(uname);
        XVM_CHECK(u.ok());
        auto out = rig.mgr->ApplyAndPropagateAll(MakeInsertStmt(*u));
        XVM_CHECK(out.ok());
      }
      rig = make(false);
      WallTimer rep_timer;
      XVM_CHECK(rig.mgr->Recover(dir).ok());
      replay_ms += rep_timer.ElapsedMs();
    }
    std::printf("%-10zu %14.2f %14.2f %14.2f\n", bytes / 1024,
                ckpt_ms / Reps(), recover_ms / Reps(), replay_ms / Reps());
    Wipe(dir);
  }
}

}  // namespace
}  // namespace xvm::bench

int main() {
  xvm::bench::BenchWalAppend();
  xvm::bench::BenchCheckpointAndRecover();
  return 0;
}
