// Cached vs. uncached val/cont access (fig. 26 spirit: the repeated-work
// knob). The canonical relations are virtual, so every scan re-derives val
// (subtree text concatenation) and cont (subtree serialization); the
// delta-aware cache in StoreIndex memoizes both and invalidates precisely
// from update deltas. Each benchmark runs the same workload with the cache
// forced on and forced off — the /cache:1 vs /cache:0 rows are the
// comparison, and the cache's own hit/miss counters are exported as
// benchmark counters.

#include <benchmark/benchmark.h>

#include "pattern/compile.h"
#include "update/update.h"
#include "view/manager.h"
#include "xmark/generator.h"
#include "xmark/updates.h"
#include "xmark/views.h"

namespace xvm {
namespace {

void ExportCacheCounters(benchmark::State& state, const StoreIndex& store) {
  const ValContCache::Stats st = store.cache().stats();
  state.counters["hits"] = static_cast<double>(st.hits);
  state.counters["misses"] = static_cast<double>(st.misses);
  state.counters["invalidations"] = static_cast<double>(st.invalidations);
}

/// Repeated full evaluation of a cont-carrying view (Q1 materializes name
/// payloads): every iteration after the first re-reads the same subtrees,
/// the case the cache exists for.
void BM_RepeatedViewEval(benchmark::State& state) {
  const bool cache_on = state.range(0) != 0;
  Document doc;
  GenerateXMark(XMarkConfig{256 * 1024, 7}, &doc);
  StoreIndex store(&doc);
  store.cache().set_enabled(cache_on);
  store.Build();
  auto def = XMarkView("Q1");
  const TreePattern& pat = def->pattern();
  for (auto _ : state) {
    auto result = EvalViewWithCounts(pat, StoreLeafSource(&store, &pat));
    benchmark::DoNotOptimize(result);
  }
  ExportCacheCounters(state, store);
}
BENCHMARK(BM_RepeatedViewEval)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("cache")
    ->Unit(benchmark::kMillisecond);

/// Multi-view maintenance stream: nine views over one store, a mixed
/// insert/delete stream. Each statement's propagation re-reads val/cont of
/// overlapping leaf relations across the views — hits for all views after
/// the first, minus what the deltas invalidate.
void BM_MultiViewMaintenance(benchmark::State& state) {
  const bool cache_on = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    Document doc;
    GenerateXMark(XMarkConfig{128 * 1024, 7}, &doc);
    StoreIndex store(&doc);
    store.cache().set_enabled(cache_on);
    store.Build();
    ViewManager mgr(&doc, &store);
    size_t i = 0;
    for (const std::string& name : XMarkViewNames()) {
      auto def = XMarkView(name);
      XVM_CHECK(mgr.AddView(std::move(def).value(),
                            (i++ % 2 == 0) ? LatticeStrategy::kSnowcaps
                                           : LatticeStrategy::kLeaves)
                    .ok());
    }
    state.ResumeTiming();
    for (const char* uname : {"X1_L", "A7_O", "B7_LB"}) {
      auto u = FindXMarkUpdate(uname);
      benchmark::DoNotOptimize(mgr.ApplyAndPropagateAll(MakeInsertStmt(*u)));
      benchmark::DoNotOptimize(mgr.ApplyAndPropagateAll(MakeDeleteStmt(*u)));
    }
    state.PauseTiming();
    ExportCacheCounters(state, store);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_MultiViewMaintenance)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("cache")
    ->Unit(benchmark::kMillisecond);

/// The raw accessor, against one hot subtree: upper bound of the win.
void BM_ContAccessHotSubtree(benchmark::State& state) {
  const bool cache_on = state.range(0) != 0;
  Document doc;
  GenerateXMark(XMarkConfig{256 * 1024, 7}, &doc);
  StoreIndex store(&doc);
  store.cache().set_enabled(cache_on);
  store.Build();
  const NodeHandle root = doc.root();
  // One miss fills the entry; with the cache off every read re-serializes
  // the whole document.
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Cont(root));
  }
  ExportCacheCounters(state, store);
}
BENCHMARK(BM_ContAccessHotSubtree)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("cache")
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace xvm

BENCHMARK_MAIN();
