// Ablation studies for the design choices behind the maintenance engine
// (not paper figures; they quantify the ingredients the paper credits):
//
//  A. Term pruning (Props. 3.6 / 3.8 / 4.7): propagation time with both
//     data-driven pruning rules on, each alone, and both off.
//  B. Pattern evaluation strategy: per-edge structural-join pipeline vs
//     holistic twig (PathStack + merge) on the XMark views.
//  C. Snowcap choice: cost-based (§3.5 future work, view/costmodel.h) vs
//     the paper's one-per-level chain vs leaves-only, under an update
//     profile the chooser was given.

#include "bench_util.h"

#include "pattern/twig.h"
#include "view/costmodel.h"

namespace xvm::bench {
namespace {

void AblatePruning() {
  PrintBanner("Ablation A", "Term pruning on/off (insert + delete, 1 MB)");
  const size_t bytes = ScaledBytes(1024);
  struct Arm {
    const char* name;
    MaintainOptions opts;
  };
  const Arm arms[] = {
      {"both_rules", {true, true}},
      {"only_empty_delta", {true, false}},
      {"only_anchor_paths", {false, true}},
      {"no_pruning", {false, false}},
  };
  std::printf("%-20s %12s %12s %14s %14s\n", "arm", "ins_ms", "del_ms",
              "ins_terms_eval", "del_terms_eval");
  for (const Arm& arm : arms) {
    double ins_ms = 0, del_ms = 0;
    size_t ins_terms = 0, del_terms = 0;
    for (int rep = 0; rep < Reps(); ++rep) {
      for (const char* uname : {"X2_L", "B3_LB"}) {
        auto u = FindXMarkUpdate(uname);
        XVM_CHECK(u.ok());
        for (bool insert : {true, false}) {
          Workbench wb = MakeXMark(bytes, 7);
          auto def = XMarkView("Q2");
          XVM_CHECK(def.ok());
          MaintainedView mv(std::move(def).value(), wb.store.get(),
                            LatticeStrategy::kSnowcaps);
          mv.set_options(arm.opts);
          mv.Initialize();
          auto out = mv.ApplyAndPropagate(
              wb.doc.get(), insert ? MakeInsertStmt(*u) : MakeDeleteStmt(*u));
          XVM_CHECK(out.ok());
          double prop_ms = out->timing.Get(phase::kGetExpression) +
                           out->timing.Get(phase::kExecuteUpdate) +
                           out->timing.Get(phase::kUpdateLattice);
          (insert ? ins_ms : del_ms) += prop_ms;
          (insert ? ins_terms : del_terms) += out->stats.terms_evaluated;
        }
      }
    }
    std::printf("%-20s %12.3f %12.3f %14zu %14zu\n", arm.name,
                ins_ms / Reps(), del_ms / Reps(), ins_terms / Reps(),
                del_terms / Reps());
  }
}

void AblateEvalStrategy() {
  PrintBanner("Ablation B",
              "Pattern evaluation: structural-join pipeline vs holistic "
              "twig (full view evaluation, 1 MB)");
  const size_t bytes = ScaledBytes(1024);
  Workbench wb = MakeXMark(bytes, 7);
  std::printf("%-6s %14s %14s %10s\n", "view", "joins_ms", "twig_ms",
              "tuples");
  for (const auto& name : XMarkViewNames()) {
    auto def = XMarkView(name);
    XVM_CHECK(def.ok());
    const TreePattern& pat = def->pattern();
    LeafSource src = StoreLeafSource(wb.store.get(), &pat);
    double joins_ms = 0, twig_ms = 0;
    size_t tuples = 0;
    for (int rep = 0; rep < Reps(); ++rep) {
      WallTimer t1;
      Relation a = EvalTreePattern(pat, src, nullptr);
      joins_ms += t1.ElapsedMs();
      WallTimer t2;
      Relation b = EvalTreePatternTwig(pat, src, nullptr);
      twig_ms += t2.ElapsedMs();
      XVM_CHECK(a.size() == b.size());
      tuples = a.size();
    }
    std::printf("%-6s %14.3f %14.3f %10zu\n", name.c_str(), joins_ms / Reps(),
                twig_ms / Reps(), tuples);
  }
}

void AblateSnowcapChoice() {
  PrintBanner("Ablation C",
              "Snowcap choice: cost-based vs per-level chain vs leaves "
              "(view Q1, X1_L-shaped update stream, 1 MB)");
  const size_t bytes = ScaledBytes(1024);
  auto u = FindXMarkUpdate("X1_L");
  XVM_CHECK(u.ok());

  // The update profile the statement stream follows: name-heavy inserts.
  UpdateProfile profile;
  profile.Set("name", 5.0);

  struct Arm {
    const char* name;
    int mode;  // 0 = cost-based, 1 = chain, 2 = leaves
  };
  std::printf("%-12s %14s %14s %12s\n", "arm", "propagate_ms",
              "lattice_tuples", "snowcaps");
  for (const Arm& arm : {Arm{"cost_based", 0}, Arm{"chain", 1},
                         Arm{"leaves", 2}}) {
    double ms = 0;
    size_t lattice_tuples = 0, snowcap_count = 0;
    for (int rep = 0; rep < Reps(); ++rep) {
      Workbench wb = MakeXMark(bytes, 7);
      auto def = XMarkView("Q1");
      XVM_CHECK(def.ok());
      std::unique_ptr<MaintainedView> mv;
      if (arm.mode == 0) {
        auto chosen =
            ChooseSnowcaps(def->pattern(), *wb.store, profile, 4);
        mv = std::make_unique<MaintainedView>(std::move(def).value(),
                                              wb.store.get(),
                                              std::move(chosen));
      } else {
        mv = std::make_unique<MaintainedView>(
            std::move(def).value(), wb.store.get(),
            arm.mode == 1 ? LatticeStrategy::kSnowcaps
                          : LatticeStrategy::kLeaves);
      }
      mv->Initialize();
      for (int i = 0; i < 3; ++i) {
        auto out = mv->ApplyAndPropagate(wb.doc.get(), MakeInsertStmt(*u));
        XVM_CHECK(out.ok());
        ms += out->timing.Get(phase::kGetExpression) +
              out->timing.Get(phase::kExecuteUpdate) +
              out->timing.Get(phase::kUpdateLattice);
      }
      lattice_tuples = mv->lattice().TotalTuples();
      snowcap_count = mv->lattice().snowcaps().size();
    }
    std::printf("%-12s %14.3f %14zu %12zu\n", arm.name, ms / Reps(),
                lattice_tuples, snowcap_count);
  }
}

}  // namespace
}  // namespace xvm::bench

int main() {
  xvm::bench::AblatePruning();
  xvm::bench::AblateEvalStrategy();
  xvm::bench::AblateSnowcapChoice();
  return 0;
}
