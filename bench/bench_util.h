#ifndef XVM_BENCH_BENCH_UTIL_H_
#define XVM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baseline/recompute.h"
#include "store/canonical.h"
#include "update/update.h"
#include "view/maintain.h"
#include "xmark/generator.h"
#include "xmark/updates.h"
#include "xmark/views.h"
#include "xml/document.h"

namespace xvm::bench {

/// Global size multiplier for document sizes, from the XVM_SCALE environment
/// variable (default 0.25). The paper's figures use 100 KB – 50 MB XMark
/// documents; the default scale keeps the whole harness to a few minutes.
/// Run with XVM_SCALE=1 to reproduce the paper's nominal sizes.
double Scale();

/// Repetitions per measurement (XVM_REPS, default 3; the paper averaged 5).
int Reps();

/// paper_kb scaled by Scale(), in bytes, with a small floor.
size_t ScaledBytes(size_t paper_kb);

/// A generated document with its store.
struct Workbench {
  std::unique_ptr<Document> doc;
  std::unique_ptr<StoreIndex> store;
};

Workbench MakeXMark(size_t bytes, uint64_t seed = 7);

/// One measured maintenance run: fresh document, initialized view, one
/// statement propagated. Returns the outcome (with the five-phase timing).
UpdateOutcome RunMaintained(const std::string& view_name, size_t bytes,
                            const UpdateStmt& stmt, LatticeStrategy strategy,
                            uint64_t seed = 7);

/// Same but measures the full-recomputation baseline.
UpdateOutcome RunRecompute(const std::string& view_name, size_t bytes,
                           const UpdateStmt& stmt, uint64_t seed = 7);

/// Averages outcomes of `reps` runs of `fn`.
template <typename Fn>
UpdateOutcome Averaged(int reps, Fn&& fn) {
  UpdateOutcome total;
  for (int i = 0; i < reps; ++i) {
    UpdateOutcome one = fn();
    total.timing.Merge(one.timing);
    total.stats = one.stats;
    total.nodes_inserted = one.nodes_inserted;
    total.nodes_deleted = one.nodes_deleted;
  }
  PhaseTimer averaged;
  for (const auto& [name, ms] : total.timing.phases()) {
    averaged.Add(name, ms / reps);
  }
  total.timing = averaged;
  return total;
}

/// Figure-style output: a header banner and aligned rows.
void PrintBanner(const std::string& figure, const std::string& description);
void PrintPhaseHeader();
void PrintPhaseRow(const std::string& label, const PhaseTimer& timing);
void PrintKv(const std::string& key, double value_ms);

}  // namespace xvm::bench

#endif  // XVM_BENCH_BENCH_UTIL_H_
