#ifndef XVM_BENCH_BENCH_UTIL_H_
#define XVM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baseline/recompute.h"
#include "common/metrics.h"
#include "store/canonical.h"
#include "update/update.h"
#include "view/maintain.h"
#include "view/manager.h"
#include "xmark/generator.h"
#include "xmark/updates.h"
#include "xmark/views.h"
#include "xml/document.h"

namespace xvm::bench {

/// Global size multiplier for document sizes, from the XVM_SCALE environment
/// variable (default 0.25). The paper's figures use 100 KB – 50 MB XMark
/// documents; the default scale keeps the whole harness to a few minutes.
/// Run with XVM_SCALE=1 to reproduce the paper's nominal sizes.
double Scale();

/// Repetitions per measurement (XVM_REPS, default 3; the paper averaged 5).
int Reps();

/// Propagation worker count for multi-view runs (XVM_WORKERS, default: the
/// hardware concurrency).
size_t Workers();

/// paper_kb scaled by Scale(), in bytes, with a small floor.
size_t ScaledBytes(size_t paper_kb);

/// A generated document with its store.
struct Workbench {
  std::unique_ptr<Document> doc;
  std::unique_ptr<StoreIndex> store;
};

Workbench MakeXMark(size_t bytes, uint64_t seed = 7);

/// One measured maintenance run: fresh document, initialized view, one
/// statement propagated. Returns the outcome (with the five-phase timing).
UpdateOutcome RunMaintained(const std::string& view_name, size_t bytes,
                            const UpdateStmt& stmt, LatticeStrategy strategy,
                            uint64_t seed = 7);

/// Same but measures the full-recomputation baseline.
UpdateOutcome RunRecompute(const std::string& view_name, size_t bytes,
                           const UpdateStmt& stmt, uint64_t seed = 7);

/// One multi-view coordinator run: fresh document, *all* XMark views
/// registered on one ViewManager, one statement applied and propagated to
/// every view with `workers` propagation lanes. Per-view order in the result
/// is XMarkViewNames() order. Optionally records into `metrics`.
MultiUpdateOutcome RunManagerAll(size_t bytes, const UpdateStmt& stmt,
                                 size_t workers, uint64_t seed = 7,
                                 MetricsRegistry* metrics = nullptr);

/// Writes metrics.ToJson() to $XVM_METRICS_JSON if set, else to stdout.
void DumpMetricsJson(const MetricsRegistry& metrics);

/// Averages outcomes of `reps` runs of `fn`.
template <typename Fn>
UpdateOutcome Averaged(int reps, Fn&& fn) {
  UpdateOutcome total;
  for (int i = 0; i < reps; ++i) {
    UpdateOutcome one = fn();
    total.timing.Merge(one.timing);
    total.stats = one.stats;
    total.nodes_inserted = one.nodes_inserted;
    total.nodes_deleted = one.nodes_deleted;
  }
  PhaseTimer averaged;
  for (const auto& [name, ms] : total.timing.phases()) {
    averaged.Add(name, ms / reps);
  }
  total.timing = averaged;
  return total;
}

/// Averages a MultiUpdateOutcome over `reps` runs of `fn`: shared and
/// per-view phase timings and the propagation wall time are all averaged.
template <typename Fn>
MultiUpdateOutcome AveragedMulti(int reps, Fn&& fn) {
  MultiUpdateOutcome total;
  for (int i = 0; i < reps; ++i) {
    MultiUpdateOutcome one = fn();
    if (i == 0) {
      total = std::move(one);
    } else {
      total.shared_timing.Merge(one.shared_timing);
      for (size_t v = 0; v < total.per_view.size(); ++v) {
        total.per_view[v].timing.Merge(one.per_view[v].timing);
      }
      total.propagate_wall_ms += one.propagate_wall_ms;
    }
  }
  auto avg = [reps](PhaseTimer* t) {
    PhaseTimer a;
    for (const auto& [name, ms] : t->phases()) a.Add(name, ms / reps);
    *t = a;
  };
  avg(&total.shared_timing);
  for (UpdateOutcome& o : total.per_view) avg(&o.timing);
  total.propagate_wall_ms /= reps;
  return total;
}

/// Figure-style output: a header banner and aligned rows.
void PrintBanner(const std::string& figure, const std::string& description);
void PrintPhaseHeader();
void PrintPhaseRow(const std::string& label, const PhaseTimer& timing);
void PrintKv(const std::string& key, double value_ms);

}  // namespace xvm::bench

#endif  // XVM_BENCH_BENCH_UTIL_H_
