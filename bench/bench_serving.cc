// Snapshot-serving read path under maintenance churn: snapshot acquisition
// throughput at 1/2/4/8 reader threads while a dedicated writer thread
// continuously applies an insert/delete stream through the ViewManager.
// Readers only ever touch the RCU publication slot (a shared_ptr copy
// under a reader lock), so per-thread acquisition rate should hold up as
// readers are added and be essentially unaffected by the churn — compare
// the /churn:1 rows against the idle /churn:0 baseline at each thread
// count. Serving counters (publications, staleness peak) are exported as
// benchmark counters. A separate single-thread benchmark prices the point
// lookup on an acquired snapshot, which is independent of publication.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "view/manager.h"
#include "xmark/generator.h"
#include "xmark/updates.h"
#include "xmark/views.h"

namespace xvm {
namespace {

struct ServingFixture {
  explicit ServingFixture(bool churn) : store(&doc) {
    GenerateXMark(XMarkConfig{64 * 1024, 7}, &doc);
    store.Build();
    mgr = std::make_unique<ViewManager>(&doc, &store);
    for (const char* name : {"Q1", "Q2"}) {
      auto def = XMarkView(name);
      XVM_CHECK(def.ok());
      XVM_CHECK(
          mgr->AddView(std::move(def).value(), LatticeStrategy::kSnowcaps)
              .ok());
    }
    if (!churn) return;
    for (const char* uname : {"X1_L", "X2_L"}) {
      auto u = FindXMarkUpdate(uname);
      XVM_CHECK(u.ok());
      stmts.push_back(MakeInsertStmt(*u));
      stmts.push_back(MakeDeleteStmt(*u));
    }
    writer = std::thread([this]() {
      size_t next = 0;
      while (!stop.load(std::memory_order_acquire)) {
        XVM_CHECK(mgr->ApplyAndPropagateAll(stmts[next]).ok());
        next = (next + 1) % stmts.size();
      }
    });
  }

  ~ServingFixture() {
    stop.store(true, std::memory_order_release);
    if (writer.joinable()) writer.join();
  }

  Document doc;
  StoreIndex store;
  std::unique_ptr<ViewManager> mgr;
  std::vector<UpdateStmt> stmts;
  std::atomic<bool> stop{false};
  std::thread writer;
};

ServingFixture* g_fixture = nullptr;

/// One reader thread's hot loop: acquire the current cut-consistent set.
/// The work is content-independent (the generation read stops the compiler
/// from discarding the acquisition), so /churn:0 and /churn:1 rows price
/// exactly the same reader-side operation.
void BM_SnapshotAcquire(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_fixture = new ServingFixture(state.range(0) != 0);
  }
  for (auto _ : state) {
    SnapshotSetPtr cut = g_fixture->mgr->SnapshotAll();
    benchmark::DoNotOptimize(cut->generation);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    ServingStats stats = g_fixture->mgr->serving_stats();
    delete g_fixture;  // joins the writer first
    g_fixture = nullptr;
    state.counters["publications"] = static_cast<double>(stats.publications);
    state.counters["staleness_max"] = static_cast<double>(stats.staleness_max);
  }
}
BENCHMARK(BM_SnapshotAcquire)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("churn")
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// The serve-a-query-from-the-view path on an already-acquired snapshot:
/// encode a tuple's stored-ID key and look it up. Acquisition-free, so
/// this prices the read API itself.
void BM_SnapshotPointLookup(benchmark::State& state) {
  ServingFixture fixture(/*churn=*/false);
  ViewSnapshotPtr snap = fixture.mgr->Snapshot(0);
  XVM_CHECK(snap != nullptr && !snap->empty());
  size_t next = 0;
  for (auto _ : state) {
    const CountedTuple& probe = snap->tuples()[next];
    benchmark::DoNotOptimize(snap->FindByIdKey(snap->IdKeyOf(probe.tuple)));
    next = (next + 1) % snap->size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["tuples"] = static_cast<double>(snap->size());
}
BENCHMARK(BM_SnapshotPointLookup)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace xvm

BENCHMARK_MAIN();
