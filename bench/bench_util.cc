#include "bench_util.h"

#include <algorithm>
#include <cstdlib>

namespace xvm::bench {

double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("XVM_SCALE");
    if (env == nullptr) return 0.25;
    double v = std::atof(env);
    return v > 0 ? v : 0.25;
  }();
  return scale;
}

int Reps() {
  static const int reps = [] {
    const char* env = std::getenv("XVM_REPS");
    if (env == nullptr) return 3;
    int v = std::atoi(env);
    return v > 0 ? v : 3;
  }();
  return reps;
}

size_t Workers() {
  static const size_t workers = [] {
    const char* env = std::getenv("XVM_WORKERS");
    if (env == nullptr) return ThreadPool::DefaultWorkers();
    int v = std::atoi(env);
    return v > 0 ? static_cast<size_t>(v) : ThreadPool::DefaultWorkers();
  }();
  return workers;
}

size_t ScaledBytes(size_t paper_kb) {
  double bytes = static_cast<double>(paper_kb) * 1024.0 * Scale();
  return std::max<size_t>(static_cast<size_t>(bytes), 16 * 1024);
}

Workbench MakeXMark(size_t bytes, uint64_t seed) {
  Workbench wb;
  wb.doc = std::make_unique<Document>();
  GenerateXMark(XMarkConfig{bytes, seed}, wb.doc.get());
  wb.store = std::make_unique<StoreIndex>(wb.doc.get());
  wb.store->Build();
  return wb;
}

UpdateOutcome RunMaintained(const std::string& view_name, size_t bytes,
                            const UpdateStmt& stmt, LatticeStrategy strategy,
                            uint64_t seed) {
  Workbench wb = MakeXMark(bytes, seed);
  auto def = XMarkView(view_name);
  XVM_CHECK(def.ok());
  MaintainedView mv(std::move(def).value(), wb.store.get(), strategy);
  mv.Initialize();
  auto out = mv.ApplyAndPropagate(wb.doc.get(), stmt);
  XVM_CHECK(out.ok());
  return std::move(out).value();
}

UpdateOutcome RunRecompute(const std::string& view_name, size_t bytes,
                           const UpdateStmt& stmt, uint64_t seed) {
  Workbench wb = MakeXMark(bytes, seed);
  auto def = XMarkView(view_name);
  XVM_CHECK(def.ok());
  RecomputedView rv(std::move(def).value(), wb.store.get());
  rv.Initialize();
  auto out = rv.ApplyAndRecompute(wb.doc.get(), stmt);
  XVM_CHECK(out.ok());
  return std::move(out).value();
}

MultiUpdateOutcome RunManagerAll(size_t bytes, const UpdateStmt& stmt,
                                 size_t workers, uint64_t seed,
                                 MetricsRegistry* metrics) {
  Workbench wb = MakeXMark(bytes, seed);
  ViewManager mgr(wb.doc.get(), wb.store.get());
  mgr.set_workers(workers);
  mgr.set_metrics(metrics);
  for (const std::string& name : XMarkViewNames()) {
    auto def = XMarkView(name);
    XVM_CHECK(def.ok());
    XVM_CHECK(
        mgr.AddView(std::move(def).value(), LatticeStrategy::kSnowcaps).ok());
  }
  auto out = mgr.ApplyAndPropagateAll(stmt);
  XVM_CHECK(out.ok());
  return std::move(out).value();
}

void DumpMetricsJson(const MetricsRegistry& metrics) {
  std::string json = metrics.ToJson();
  const char* path = std::getenv("XVM_METRICS_JSON");
  if (path != nullptr && *path != '\0') {
    std::FILE* f = std::fopen(path, "w");
    if (f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("\n[metrics json written to %s]\n", path);
      return;
    }
    std::printf("\n[could not open %s; dumping to stdout]\n", path);
  }
  std::printf("\n-- metrics json --\n%s\n", json.c_str());
}

void PrintBanner(const std::string& figure, const std::string& description) {
  std::printf("\n==== %s ====\n%s\n", figure.c_str(), description.c_str());
  std::printf("(scale=%.3g, reps=%d; XVM_SCALE=1 for the paper's sizes)\n\n",
              Scale(), Reps());
}

void PrintPhaseHeader() {
  std::printf("%-22s %12s %12s %12s %12s %12s %12s\n", "case",
              "find_tgt_ms", "deltas_ms", "get_expr_ms", "exec_upd_ms",
              "upd_latt_ms", "total_ms");
}

void PrintPhaseRow(const std::string& label, const PhaseTimer& timing) {
  std::printf("%-22s %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f\n",
              label.c_str(), timing.Get(phase::kFindTargets),
              timing.Get(phase::kComputeDeltas),
              timing.Get(phase::kGetExpression),
              timing.Get(phase::kExecuteUpdate),
              timing.Get(phase::kUpdateLattice), timing.TotalMs());
}

void PrintKv(const std::string& key, double value_ms) {
  std::printf("%-40s %12.3f ms\n", key.c_str(), value_ms);
}

}  // namespace xvm::bench
