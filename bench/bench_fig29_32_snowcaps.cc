// Figures 29-32: Snowcaps versus Leaves lattice strategies for views Q4 and
// Q6 across document sizes. Figures 29/30 plot total maintenance time
// (evaluate terms + update auxiliary structures); Figures 31/32 split the
// two components: (R) time to evaluate the terms, (U) time to update the
// materialized structures. The paper's shape: Snowcaps beats Leaves overall;
// the gap narrows as the number of snowcap tuples grows (Q4 vs Q6).

#include "bench_util.h"

namespace xvm::bench {
namespace {

void RunView(const std::string& figure_total, const std::string& figure_split,
             const std::string& view) {
  auto u = FindXMarkUpdate(view == "Q4" ? "X2_L" : "E6_L");
  XVM_CHECK(u.ok());
  const std::vector<size_t> paper_kb = {1000, 5000, 10 * 1024, 20 * 1024};

  PrintBanner(figure_total + " / " + figure_split,
              "Snowcaps vs Leaves (view " + view + "), insert " + u->name);
  std::printf("%-10s %12s %12s %12s %12s %12s %12s\n", "doc_kb",
              "sc_eval_R", "sc_update_U", "sc_total", "lv_eval_R",
              "lv_update_U", "lv_total");
  for (size_t kb : paper_kb) {
    auto measure = [&](LatticeStrategy s) {
      return Averaged(Reps(), [&] {
        return RunMaintained(view, ScaledBytes(kb), MakeInsertStmt(*u), s);
      });
    };
    UpdateOutcome sc = measure(LatticeStrategy::kSnowcaps);
    UpdateOutcome lv = measure(LatticeStrategy::kLeaves);
    // (R) = term evaluation = ExecuteUpdate; (U) = UpdateLattice.
    double sc_r = sc.timing.Get(phase::kExecuteUpdate);
    double sc_u = sc.timing.Get(phase::kUpdateLattice);
    double lv_r = lv.timing.Get(phase::kExecuteUpdate);
    double lv_u = lv.timing.Get(phase::kUpdateLattice);
    std::printf("%-10zu %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f\n", kb,
                sc_r, sc_u, sc_r + sc_u, lv_r, lv_u, lv_r + lv_u);
  }
}

}  // namespace
}  // namespace xvm::bench

int main() {
  xvm::bench::RunView("Figure 29", "Figure 31", "Q4");
  xvm::bench::RunView("Figure 30", "Figure 32", "Q6");
  return 0;
}
