// Figure 19: PDDT/MT time breakdown for delete propagation to the XMark
// views Q1, Q3 and Q6 on a (scaled) 10 MB document. The paper's shape:
// Get Update Expression is smaller than for inserts (deletion pruning is
// faster), and Execute Update grows with the number of deleted targets and
// with PDMT work on val/cont-annotated views.

#include "bench_util.h"

namespace xvm::bench {
namespace {

void Run() {
  PrintBanner("Figure 19",
              "Delete propagation breakdown (views Q1/Q3/Q6, 10 MB doc)");
  const size_t bytes = ScaledBytes(10 * 1024);
  const std::vector<std::pair<std::string, std::vector<std::string>>> plan = {
      {"Q1", {"X1_L", "A6_A", "A7_O", "A8_AO", "B7_LB"}},
      {"Q3", {"B3_LB", "X2_L", "X3_A", "X4_O", "X5_AO"}},
      {"Q6", {"B1_A", "B5_LB", "E6_L", "X7_O", "X8_AO"}},
  };
  for (const auto& [view, updates] : plan) {
    std::printf("--- view %s ---\n", view.c_str());
    PrintPhaseHeader();
    for (const auto& uname : updates) {
      auto u = FindXMarkUpdate(uname);
      XVM_CHECK(u.ok());
      UpdateOutcome out = Averaged(Reps(), [&] {
        return RunMaintained(view, bytes, MakeDeleteStmt(*u),
                             LatticeStrategy::kSnowcaps);
      });
      PrintPhaseRow(view + "_" + uname, out.timing);
    }
  }
}

}  // namespace
}  // namespace xvm::bench

int main() {
  xvm::bench::Run();
  return 0;
}
