// Figure 25 (a)/(b): scalability of view insert and delete maintenance for
// view Q1 and update A6_A over documents from 500 KB to 50 MB (scaled).
// The paper's shape: delta tables and update-expression times stay small;
// Execute Update and Find Target Nodes grow gracefully with document size;
// Update Lattice is the largest maintenance component.

#include "bench_util.h"

namespace xvm::bench {
namespace {

void Run() {
  const std::vector<size_t> paper_kb = {500, 1000, 10 * 1024, 50 * 1024};
  auto u = FindXMarkUpdate("A6_A");
  XVM_CHECK(u.ok());

  PrintBanner("Figure 25 (a)",
              "Scalability of view insert (view Q1, update A6_A)");
  PrintPhaseHeader();
  for (size_t kb : paper_kb) {
    UpdateOutcome out = Averaged(Reps(), [&] {
      return RunMaintained("Q1", ScaledBytes(kb), MakeInsertStmt(*u),
                           LatticeStrategy::kSnowcaps);
    });
    PrintPhaseRow(std::to_string(kb) + "KB", out.timing);
  }

  PrintBanner("Figure 25 (b)",
              "Scalability of view delete (view Q1, delete A6_A)");
  PrintPhaseHeader();
  for (size_t kb : paper_kb) {
    UpdateOutcome out = Averaged(Reps(), [&] {
      return RunMaintained("Q1", ScaledBytes(kb), MakeDeleteStmt(*u),
                           LatticeStrategy::kSnowcaps);
    });
    PrintPhaseRow(std::to_string(kb) + "KB", out.timing);
  }

  PrintBanner("Figure 25 (c)",
              "Multi-view parallel scalability: all views, update A6_A, "
              "propagation wall time by worker count");
  const size_t bytes = ScaledBytes(10 * 1024);
  std::printf("%-10s %16s %16s\n", "workers", "insert_wall_ms",
              "delete_wall_ms");
  for (size_t w : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    MultiUpdateOutcome ins = AveragedMulti(Reps(), [&] {
      return RunManagerAll(bytes, MakeInsertStmt(*u), w);
    });
    MultiUpdateOutcome del = AveragedMulti(Reps(), [&] {
      return RunManagerAll(bytes, MakeDeleteStmt(*u), w);
    });
    std::printf("%-10zu %16.3f %16.3f\n", w, ins.propagate_wall_ms,
                del.propagate_wall_ms);
  }
}

}  // namespace
}  // namespace xvm::bench

int main() {
  xvm::bench::Run();
  return 0;
}
