// Figure 28: statement-level algebraic maintenance (PINT/PIMT) versus the
// node-at-a-time IVMA algorithm of Sawires et al. (view Q1, 100 KB doc).
// Each insertion adds a fixed 5-node tree (root plus four children): one
// PINT call versus five consecutive IVMA node propagations. The paper's
// shape: the bulk algebraic approach wins by an order of magnitude or more.

#include "baseline/ivma.h"
#include "bench_util.h"

namespace xvm::bench {
namespace {

void Run() {
  PrintBanner("Figure 28",
              "Execute-update time: PINT/PIMT vs IVMA (view Q1, 100 KB)");
  // The paper fixes this figure at 100 KB; the gap between bulk algebraic
  // propagation and per-node path re-evaluation *grows* with document size,
  // so we keep the paper's size regardless of XVM_SCALE and add a size
  // sweep below.
  const size_t bytes = 100 * 1024;
  const std::vector<std::string> updates = {"X1_L", "A6_A", "A7_O", "A8_AO",
                                            "B7_LB"};
  std::printf("%-10s %14s %14s %10s %12s\n", "update", "pint_exec_ms",
              "ivma_exec_ms", "speedup", "ivma_calls");
  for (const auto& uname : updates) {
    auto u = FindXMarkUpdate(uname);
    XVM_CHECK(u.ok());
    UpdateStmt stmt = MakeInsertStmt(*u);

    UpdateOutcome ours = Averaged(Reps(), [&] {
      return RunMaintained("Q1", bytes, stmt, LatticeStrategy::kSnowcaps);
    });
    // "Execute Update Query" comparison, as in the figure: propagation work
    // excluding target location (identical for both systems).
    double ours_exec = ours.timing.Get(phase::kExecuteUpdate) +
                       ours.timing.Get(phase::kUpdateLattice);

    size_t calls = 0;
    UpdateOutcome theirs = Averaged(Reps(), [&] {
      Workbench wb = MakeXMark(bytes, 7);
      auto def = XMarkView("Q1");
      XVM_CHECK(def.ok());
      IvmaView iv(std::move(def).value(), wb.store.get());
      iv.Initialize();
      auto o = iv.ApplyAndPropagate(wb.doc.get(), stmt);
      XVM_CHECK(o.ok());
      calls = iv.propagation_calls();
      return std::move(o).value();
    });
    double theirs_exec = theirs.timing.Get(phase::kExecuteUpdate);
    std::printf("%-10s %14.3f %14.3f %9.1fx %12zu\n", uname.c_str(),
                ours_exec, theirs_exec,
                ours_exec > 0 ? theirs_exec / ours_exec : 0.0, calls);
  }

  // Size sweep: the node-at-a-time gap widens with document size (each
  // IVMA call re-evaluates the view's path over the whole document).
  std::printf("\nGap vs document size (update X1_L):\n");
  std::printf("%-10s %14s %14s %10s\n", "doc_kb", "pint_exec_ms",
              "ivma_exec_ms", "speedup");
  for (size_t kb : {100, 250, 500}) {
    auto u = FindXMarkUpdate("X1_L");
    XVM_CHECK(u.ok());
    UpdateStmt stmt = MakeInsertStmt(*u);
    UpdateOutcome ours =
        RunMaintained("Q1", kb * 1024, stmt, LatticeStrategy::kSnowcaps);
    double ours_exec = ours.timing.Get(phase::kExecuteUpdate) +
                       ours.timing.Get(phase::kUpdateLattice);
    Workbench wb = MakeXMark(kb * 1024, 7);
    auto def = XMarkView("Q1");
    XVM_CHECK(def.ok());
    IvmaView iv(std::move(def).value(), wb.store.get());
    iv.Initialize();
    auto o = iv.ApplyAndPropagate(wb.doc.get(), stmt);
    XVM_CHECK(o.ok());
    double theirs_exec = o->timing.Get(phase::kExecuteUpdate);
    std::printf("%-10zu %14.3f %14.3f %9.1fx\n", kb, ours_exec, theirs_exec,
                ours_exec > 0 ? theirs_exec / ours_exec : 0.0);
  }
}

}  // namespace
}  // namespace xvm::bench

int main() {
  xvm::bench::Run();
  return 0;
}
