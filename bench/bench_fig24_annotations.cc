// Figure 24: the fixed update X1_L — delete
// /site/people/person[@id="person0"] — against Q1 variants differing only
// in where val+cont annotations sit. The paper's shape: the closer val/cont
// are to the root, the more expensive PDDT/PDMT (larger values to rebuild);
// pushing them to the leaves is cheapest.

#include "bench_util.h"

namespace xvm::bench {
namespace {

void Run() {
  PrintBanner("Figure 24",
              "Fixed delete X1_L vs Q1 with varying annotations (100 KB)");
  const size_t bytes = ScaledBytes(100);
  UpdateStmt del =
      UpdateStmt::Delete("/site/people/person[@id=\"person0\"]", "X1_L");
  std::printf("%-18s %12s %12s\n", "variant", "total_ms", "tuples_mod");
  for (const auto& variant : XMarkQ1VariantNames()) {
    size_t modified = 0;
    UpdateOutcome out = Averaged(Reps(), [&] {
      Workbench wb = MakeXMark(bytes, 7);
      auto def = XMarkQ1Variant(variant);
      XVM_CHECK(def.ok());
      MaintainedView mv(std::move(def).value(), wb.store.get(),
                        LatticeStrategy::kSnowcaps);
      mv.Initialize();
      auto o = mv.ApplyAndPropagate(wb.doc.get(), del);
      XVM_CHECK(o.ok());
      modified = o->stats.tuples_modified;
      return std::move(o).value();
    });
    std::printf("%-18s %12.3f %12zu\n", variant.c_str(),
                out.timing.TotalMs(), modified);
  }
}

}  // namespace
}  // namespace xvm::bench

int main() {
  xvm::bench::Run();
  return 0;
}
