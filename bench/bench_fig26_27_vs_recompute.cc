// Figures 26 & 27: incremental maintenance (PINT/PIMT, PDDT/PDMT) versus
// full view recomputation for the XMark views Q1, Q2 and Q4 across their
// update sets. The paper's shape: recomputation is prohibitive in most
// scenarios, incremental maintenance much cheaper — more markedly for
// deletions.

#include "bench_util.h"

namespace xvm::bench {
namespace {

void RunOne(const std::string& figure, bool insert) {
  PrintBanner(figure, std::string(insert ? "PINT/PIMT" : "PDDT/PDMT") +
                          " versus full re-computation (Q1, Q2, Q4; 4 MB)");
  const size_t bytes = ScaledBytes(4 * 1024);
  const std::vector<std::pair<std::string, std::vector<std::string>>> plan = {
      {"Q1", {"X1_L", "A6_A", "A7_O", "A8_AO", "B7_LB"}},
      {"Q2", {"X2_L", "X3_A", "X4_O", "X5_AO", "B3_LB"}},
      {"Q4", {"X2_L", "X3_A", "X4_O", "X5_AO", "B3_LB"}},
  };
  std::printf("%-16s %14s %14s %14s %10s\n", "pair", "incremental_ms",
              "full_store_ms", "full_nav_ms", "speedup");
  for (const auto& [view, updates] : plan) {
    for (const auto& uname : updates) {
      auto u = FindXMarkUpdate(uname);
      XVM_CHECK(u.ok());
      UpdateStmt stmt = insert ? MakeInsertStmt(*u) : MakeDeleteStmt(*u);
      UpdateOutcome inc = Averaged(Reps(), [&] {
        return RunMaintained(view, bytes, stmt, LatticeStrategy::kSnowcaps);
      });
      // Store-backed recompute: re-joins the canonical relations (our own
      // engine's fastest full evaluation).
      UpdateOutcome full_store = Averaged(
          Reps(), [&] { return RunRecompute(view, bytes, stmt); });
      // Navigational recompute: re-evaluates the view by navigating the
      // whole document, as a generic query processor would — the closest
      // analogue of the paper's recomputation baseline.
      UpdateOutcome full_nav = Averaged(Reps(), [&] {
        Workbench wb = MakeXMark(bytes, 7);
        auto def = XMarkView(view);
        XVM_CHECK(def.ok());
        RecomputedView rv(std::move(def).value(), wb.store.get(),
                          RecomputeMode::kNavigational);
        rv.Initialize();
        auto o = rv.ApplyAndRecompute(wb.doc.get(), stmt);
        XVM_CHECK(o.ok());
        return std::move(o).value();
      });
      double inc_ms = inc.timing.TotalMs();
      double store_ms = full_store.timing.TotalMs();
      double nav_ms = full_nav.timing.TotalMs();
      // Speedup against our own engine's from-scratch evaluation (the
      // Figure-1 comparison); the navigational column shows what a generic
      // tree-walking processor would pay instead.
      std::printf("%-16s %14.3f %14.3f %14.3f %9.2fx\n",
                  (view + "_" + uname).c_str(), inc_ms, store_ms, nav_ms,
                  inc_ms > 0 ? store_ms / inc_ms : 0.0);
    }
  }
}

}  // namespace
}  // namespace xvm::bench

int main() {
  xvm::bench::RunOne("Figure 26", /*insert=*/true);
  xvm::bench::RunOne("Figure 27", /*insert=*/false);
  return 0;
}
